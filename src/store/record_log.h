// Crash-safe append-only record log.
//
// The durable-publish idiom of the artifact store (tmp + fsync + rename)
// fits whole-file artifacts; a Monte Carlo run ledger instead *grows*, one
// completed-lease record at a time, and must survive a kill at any byte.
// The append protocol here gives the append-only equivalent of the same
// guarantee:
//
//   record := magic "SKRL" | u32 reserved(0) | u64 payload size | payload
//             | u32 CRC-32(payload)
//   append := write(record) -> fsync(fd)
//
// A single writer appends at a time (callers serialize with a FileLock, the
// same advisory-flock idiom that guards artifacts), so a crash mid-append
// can tear at most the *tail* record. open() scans the file, keeps every
// record up to the first structural defect (short header, wrong magic, CRC
// mismatch), and truncates the torn tail away — so the next append lands at
// a clean record boundary and no reader ever sees a torn record. Records
// already fsync'd are never touched: committed history is immutable.
//
// The payloads are opaque bytes; the MC ledger (ssta/mc_run.cpp) encodes
// its own header/lease records inside them. The crash point
// `mc_ledger_write` simulates the worst torn-append instant: when armed the
// process _Exit()s after writing only a prefix of the record.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <vector>

#include "robust/fault_injection.h"

namespace sckl::store {

/// Append-only durable log of length-prefixed, CRC-checked records.
/// Move-only; the destructor closes the file. Not thread-safe — callers
/// serialize appends (the MC ledger holds a mutex plus the run's flock).
class RecordLog {
 public:
  RecordLog(RecordLog&& other) noexcept;
  RecordLog& operator=(RecordLog&& other) noexcept;
  RecordLog(const RecordLog&) = delete;
  RecordLog& operator=(const RecordLog&) = delete;
  ~RecordLog();

  /// Opens (creating if needed) the log at `path`: reads every valid
  /// record, truncates any torn tail a crashed writer left, and positions
  /// subsequent append()s at the clean end. Throws sckl::Error
  /// (kIoTransient) when the file cannot be opened or read.
  static RecordLog open(const std::filesystem::path& path);

  /// The records that were on disk at open() time, in append order.
  const std::vector<std::vector<std::uint8_t>>& records() const {
    return records_;
  }

  /// True when open() found and removed a torn tail record.
  bool recovered_torn_tail() const { return recovered_torn_tail_; }

  /// Durably appends one record: the full framed record is written and
  /// fsync'd before returning. Throws kIoTransient on any I/O failure.
  /// When a crash site is configured (set_crash_site) and armed, the
  /// process _Exit()s after writing only half the record — the torn-tail
  /// case open() must recover from.
  void append(const std::vector<std::uint8_t>& payload);

  /// Arms torn-append crash simulation on `site` (consulted per append).
  void set_crash_site(robust::FaultSite site) { crash_site_ = site; }

  const std::filesystem::path& path() const { return path_; }

 private:
  RecordLog() = default;

  std::filesystem::path path_;
  int fd_ = -1;
  std::vector<std::vector<std::uint8_t>> records_;
  bool recovered_torn_tail_ = false;
  std::optional<robust::FaultSite> crash_site_;
};

}  // namespace sckl::store
