#include "store/record_log.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/error.h"
#include "common/wire.h"

namespace sckl::store {
namespace {

constexpr std::uint8_t kRecordMagic[4] = {'S', 'K', 'R', 'L'};
constexpr std::size_t kRecordHeaderBytes = 16;  // magic + reserved + size
constexpr std::size_t kRecordTrailerBytes = 4;  // CRC-32 of the payload

std::uint32_t read_u32_le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t read_u64_le(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(read_u32_le(p)) |
         static_cast<std::uint64_t>(read_u32_le(p + 4)) << 32;
}

std::vector<std::uint8_t> read_file_bytes(const std::filesystem::path& path) {
  std::vector<std::uint8_t> bytes;
  std::FILE* f = std::fopen(path.string().c_str(), "rb");
  if (f == nullptr) return bytes;  // absent: an empty log
  std::uint8_t chunk[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
    bytes.insert(bytes.end(), chunk, chunk + got);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error)
    throw Error("RecordLog: read error on '" + path.string() + "'",
                ErrorCode::kIoTransient);
  return bytes;
}

}  // namespace

RecordLog::RecordLog(RecordLog&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(other.fd_),
      records_(std::move(other.records_)),
      recovered_torn_tail_(other.recovered_torn_tail_),
      crash_site_(other.crash_site_) {
  other.fd_ = -1;
}

RecordLog& RecordLog::operator=(RecordLog&& other) noexcept {
  if (this != &other) {
    this->~RecordLog();
    new (this) RecordLog(std::move(other));
  }
  return *this;
}

RecordLog::~RecordLog() {
#if defined(__unix__) || defined(__APPLE__)
  if (fd_ >= 0) ::close(fd_);
#endif
  fd_ = -1;
}

RecordLog RecordLog::open(const std::filesystem::path& path) {
  RecordLog log;
  log.path_ = path;

  const std::vector<std::uint8_t> bytes = read_file_bytes(path);
  // Keep records up to the first structural defect; everything after it is
  // a torn tail from a crashed append (single-writer protocol) and is cut
  // off so new appends land at a clean record boundary.
  std::size_t pos = 0;
  while (bytes.size() - pos >= kRecordHeaderBytes + kRecordTrailerBytes) {
    const std::uint8_t* p = bytes.data() + pos;
    if (std::memcmp(p, kRecordMagic, sizeof(kRecordMagic)) != 0) break;
    const std::uint64_t size = read_u64_le(p + 8);
    const std::uint64_t available = bytes.size() - pos - kRecordHeaderBytes;
    if (size > available || available - size < kRecordTrailerBytes) break;
    const std::uint8_t* payload = p + kRecordHeaderBytes;
    const std::uint32_t crc =
        read_u32_le(payload + static_cast<std::size_t>(size));
    if (crc != wire::crc32(payload, static_cast<std::size_t>(size))) break;
    log.records_.emplace_back(payload, payload + static_cast<std::size_t>(size));
    pos += kRecordHeaderBytes + static_cast<std::size_t>(size) +
           kRecordTrailerBytes;
  }
  if (pos < bytes.size()) {
    log.recovered_torn_tail_ = true;
    std::error_code ec;
    std::filesystem::resize_file(path, pos, ec);
    if (ec)
      throw Error("RecordLog: cannot truncate torn tail of '" + path.string() +
                      "': " + ec.message(),
                  ErrorCode::kIoTransient);
  }

#if defined(__unix__) || defined(__APPLE__)
  // O_CLOEXEC matters here: a forked-then-exec'd child inheriting the
  // append descriptor would also inherit any flock taken on it, silently
  // defeating the single-writer guarantee the lock exists to provide.
  log.fd_ = ::open(path.string().c_str(),
                   O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  if (log.fd_ < 0)
    throw Error("RecordLog: cannot open '" + path.string() + "' for append",
                ErrorCode::kIoTransient);
#else
  // Without POSIX descriptors appends degrade to buffered stdio per call.
  std::FILE* f = std::fopen(path.string().c_str(), "ab");
  if (f == nullptr)
    throw Error("RecordLog: cannot open '" + path.string() + "' for append",
                ErrorCode::kIoTransient);
  std::fclose(f);
#endif
  return log;
}

void RecordLog::append(const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> record;
  record.reserve(kRecordHeaderBytes + payload.size() + kRecordTrailerBytes);
  record.insert(record.end(), kRecordMagic, kRecordMagic + 4);
  wire::put_u32(record, 0);  // reserved
  wire::put_u64(record, payload.size());
  record.insert(record.end(), payload.begin(), payload.end());
  wire::put_u32(record, wire::crc32(payload.data(), payload.size()));

#if defined(__unix__) || defined(__APPLE__)
  if (fd_ < 0)
    throw Error("RecordLog: append on a moved-from log",
                ErrorCode::kPrecondition);
  if (crash_site_.has_value() && robust::fault_injected(*crash_site_)) {
    // Torn-append simulation: half the record reaches the file, then the
    // process dies as if kill -9'd mid-write. open() must truncate this.
    const std::size_t half = record.size() / 2;
    std::size_t done = 0;
    while (done < half) {
      const ::ssize_t n = ::write(fd_, record.data() + done, half - done);
      if (n <= 0) break;
      done += static_cast<std::size_t>(n);
    }
    std::_Exit(robust::kCrashExitCode);
  }
  std::size_t done = 0;
  while (done < record.size()) {
    const ::ssize_t n = ::write(fd_, record.data() + done, record.size() - done);
    if (n < 0)
      throw Error("RecordLog: short append to '" + path_.string() + "'",
                  ErrorCode::kIoTransient);
    done += static_cast<std::size_t>(n);
  }
  if (::fsync(fd_) != 0)
    throw Error("RecordLog: fsync failed on '" + path_.string() + "'",
                ErrorCode::kIoTransient);
#else
  std::FILE* f = std::fopen(path_.string().c_str(), "ab");
  if (f == nullptr)
    throw Error("RecordLog: cannot open '" + path_.string() + "' for append",
                ErrorCode::kIoTransient);
  const std::size_t written = std::fwrite(record.data(), 1, record.size(), f);
  const bool flushed = std::fflush(f) == 0;
  const bool closed = std::fclose(f) == 0;
  if (written != record.size() || !flushed || !closed)
    throw Error("RecordLog: short append to '" + path_.string() + "'",
                ErrorCode::kIoTransient);
#endif
  records_.push_back(payload);
}

}  // namespace sckl::store
