// Startup / on-demand recovery pass ("fsck") for an artifact repository.
//
// A store root shared by many processes accumulates debris whenever one of
// them dies mid-operation: orphaned `<key>.sckl.<pid>.<seq>.tmp` files from
// interrupted publications, empty `<key>.lock` files whose flock died with
// its holder, CRC-invalid artifacts from torn writes on non-atomic
// filesystems, and `.sckl.bad` quarantine evidence awaiting post-mortem.
// None of this debris is ever *served* — readers only trust complete,
// checksummed files under final names — but it wastes disk and hides real
// problems, so fsck() classifies every file in the root and (in repair mode)
// fixes what it safely can:
//
//   orphaned tmp          reaped once older than FsckOptions::tmp_max_age
//   stale lock file       unlinked when no process holds its flock
//   CRC-invalid artifact  quarantined to <name>.bad (evidence preserved)
//   hash-mismatched file  quarantined (content disagrees with its key name)
//   unreadable (EIO)      reported, never touched — a transient error proves
//                         nothing about the bytes
//   quarantine evidence   reported; deleted only with purge_quarantine
//
// fsck holds the repository's exclusive store lock for the whole pass, so it
// never races an in-flight publication (writers hold the shared lock); lock
// liveness is probed through flock itself, which dies with its holder, so a
// "stale" verdict is authoritative. Every decision lands in a severity-
// graded robust::HealthReport whose findings name the sckl::ErrorCode that
// motivated them, plus hard counters in FsckStats for tests and tools.
#pragma once

#include <cstddef>
#include <filesystem>

#include "robust/health.h"

namespace sckl::store {

/// Tuning of one fsck() pass.
struct FsckOptions {
  bool repair = true;               // false = classify and report only
  double tmp_max_age_seconds = 0;   // orphaned tmp younger than this is kept
  bool purge_quarantine = false;    // also delete .sckl.bad evidence files
};

/// Hard counters of one fsck() pass. With repair on, every counted problem
/// except `unreadable` (and `quarantined` without purge_quarantine) has been
/// fixed by the time fsck returns.
struct FsckStats {
  std::size_t scanned = 0;       // regular files examined
  std::size_t healthy = 0;       // artifacts that validated under their name
  std::size_t orphaned_tmp = 0;  // interrupted-publication leftovers
  std::size_t stale_locks = 0;   // lock files with no living holder
  std::size_t live_locks = 0;    // lock files currently flock'd (left alone)
  std::size_t corrupt = 0;       // CRC/format-invalid artifacts
  std::size_t mismatched = 0;    // valid content under the wrong key name
  std::size_t quarantined = 0;   // .sckl.bad evidence files present
  std::size_t unreadable = 0;    // transient I/O errors; never touched
  std::size_t repaired = 0;      // filesystem actions actually taken

  /// True when the root contained nothing but healthy artifacts.
  bool clean() const {
    return orphaned_tmp + stale_locks + corrupt + mismatched + quarantined +
               unreadable ==
           0;
  }
};

/// Counters plus the per-file findings that explain them.
struct FsckResult {
  FsckStats stats;
  robust::HealthReport report;
};

/// Scans (and in repair mode fixes) the repository rooted at `root`.
/// Blocks until the exclusive store lock is available. Throws sckl::Error
/// only when the root itself is unusable; per-file problems are findings,
/// not exceptions.
FsckResult fsck(const std::filesystem::path& root,
                const FsckOptions& options = {});

// --- repository file taxonomy (shared by fsck, gc, and ls) -----------------

/// Final artifact name: `<16 hex>.sckl`.
bool is_artifact_file(const std::filesystem::path& path);

/// Quarantine evidence: `<anything>.sckl.bad`.
bool is_quarantine_file(const std::filesystem::path& path);

/// In-flight publication leftover: a name containing `.sckl.` with a `.tmp`
/// component after it (matches both the current `<key>.sckl.<pid>.<seq>.tmp`
/// scheme and historical `<key>.sckl.tmpN` names).
bool is_tmp_file(const std::filesystem::path& path);

/// Advisory lock file: `store.lock` or `<key>.lock`.
bool is_lock_file(const std::filesystem::path& path);

/// Seconds since `path` was last written; 0 when the timestamp cannot be
/// read (an unstat-able tmp file is treated as old enough to reap under the
/// default max age).
double file_age_seconds(const std::filesystem::path& path);

/// Name of the repository-wide lock file inside a store root.
inline constexpr const char* kStoreLockName = "store.lock";

}  // namespace sckl::store
