#include "store/file_lock.h"

#include "common/error.h"

#if defined(__unix__) || defined(__APPLE__)
#define SCKL_HAVE_FLOCK 1
#include <cerrno>
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#else
#define SCKL_HAVE_FLOCK 0
#endif

namespace sckl::store {

namespace {

#if SCKL_HAVE_FLOCK

int open_lock_file(const std::filesystem::path& path) {
  int fd = -1;
  do {
    fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0)
    throw Error("FileLock: cannot open lock file '" + path.string() + "'",
                ErrorCode::kIoTransient);
  return fd;
}

/// flock with EINTR retry; `nonblock` adds LOCK_NB. Returns false only for
/// EWOULDBLOCK; other failures throw.
bool flock_retry(int fd, int operation, bool nonblock,
                 const std::filesystem::path& path) {
  if (nonblock) operation |= LOCK_NB;
  int rc = -1;
  do {
    rc = ::flock(fd, operation);
  } while (rc != 0 && errno == EINTR);
  if (rc == 0) return true;
  if (nonblock && errno == EWOULDBLOCK) return false;
  throw Error("FileLock: flock failed on '" + path.string() + "'",
              ErrorCode::kIoTransient);
}

#endif  // SCKL_HAVE_FLOCK

}  // namespace

FileLock::FileLock(FileLock&& other) noexcept
    : path_(std::move(other.path_)), fd_(other.fd_), held_(other.held_) {
  other.fd_ = -1;
  other.held_ = false;
}

FileLock& FileLock::operator=(FileLock&& other) noexcept {
  if (this != &other) {
    release();
    path_ = std::move(other.path_);
    fd_ = other.fd_;
    held_ = other.held_;
    other.fd_ = -1;
    other.held_ = false;
  }
  return *this;
}

FileLock::~FileLock() { release(); }

void FileLock::release() {
#if SCKL_HAVE_FLOCK
  if (fd_ >= 0) {
    // Closing the descriptor releases the flock; no explicit LOCK_UN needed.
    ::close(fd_);
    fd_ = -1;
  }
#endif
  held_ = false;
}

FileLock FileLock::acquire(const std::filesystem::path& path, Mode mode) {
#if SCKL_HAVE_FLOCK
  const int fd = open_lock_file(path);
  try {
    flock_retry(fd, mode == Mode::kShared ? LOCK_SH : LOCK_EX,
                /*nonblock=*/false, path);
  } catch (...) {
    ::close(fd);
    throw;
  }
  return FileLock(path, fd, true);
#else
  (void)mode;
  return FileLock(path, -1, true);  // no-op degradation, see header
#endif
}

std::optional<FileLock> FileLock::try_acquire(
    const std::filesystem::path& path, Mode mode) {
#if SCKL_HAVE_FLOCK
  const int fd = open_lock_file(path);
  bool got = false;
  try {
    got = flock_retry(fd, mode == Mode::kShared ? LOCK_SH : LOCK_EX,
                      /*nonblock=*/true, path);
  } catch (...) {
    ::close(fd);
    throw;
  }
  if (!got) {
    ::close(fd);
    return std::nullopt;
  }
  return FileLock(path, fd, true);
#else
  (void)mode;
  return FileLock(path, -1, true);
#endif
}

bool lock_is_held(const std::filesystem::path& path) {
#if SCKL_HAVE_FLOCK
  std::error_code ec;
  if (!std::filesystem::exists(path, ec) || ec) return false;
  int fd = -1;
  do {
    fd = ::open(path.c_str(), O_RDWR | O_CLOEXEC);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return false;  // vanished or unreadable: nobody we can observe
  bool held = false;
  try {
    held = !flock_retry(fd, LOCK_EX, /*nonblock=*/true, path);
  } catch (...) {
    ::close(fd);
    return false;
  }
  ::close(fd);
  return held;
#else
  (void)path;
  return false;
#endif
}

}  // namespace sckl::store
