#include "store/kle_io.h"

#include <array>
#include <bit>
#include <cstdio>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/error.h"
#include "robust/fault_injection.h"

namespace sckl::store {

namespace {

constexpr std::array<std::uint8_t, 4> kMagic = {'S', 'C', 'K', 'L'};

// The byte-level codec lives in common/wire.h so the serve protocol shares
// it; this file keeps only the artifact-specific structure.
using wire::put_f64;
using wire::put_string;
using wire::put_u32;
using wire::put_u64;

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) {
  return wire::crc32(data, size);
}

StoredKleResult::StoredKleResult(KleArtifactConfig config,
                                 std::shared_ptr<const mesh::TriMesh> mesh,
                                 linalg::Vector eigenvalues,
                                 linalg::Matrix coefficients)
    : config_(std::move(config)),
      mesh_((require(mesh != nullptr, "StoredKleResult: mesh must not be null"),
             std::move(mesh))),
      kle_(*mesh_, std::move(eigenvalues), std::move(coefficients)) {}

StoredKleResult StoredKleResult::solve(const KleArtifactConfig& config,
                                       const kernels::CovarianceKernel& kernel) {
  auto mesh = std::make_shared<const mesh::TriMesh>(config.mesh.build(config.die));
  core::KleOptions options;
  options.num_eigenpairs = static_cast<std::size_t>(config.num_eigenpairs);
  options.quadrature = config.quadrature;
  core::KleResult kle = core::solve_kle(*mesh, kernel, options);
  linalg::Vector values = kle.eigenvalues();
  linalg::Matrix coefficients = kle.coefficients();
  return StoredKleResult(config, std::move(mesh), std::move(values),
                         std::move(coefficients));
}

std::size_t StoredKleResult::approximate_bytes() const {
  const std::size_t mesh_bytes =
      mesh_->num_vertices() * sizeof(geometry::Point2) +
      mesh_->num_triangles() *
          (sizeof(mesh::TriMesh::TriangleIndices) + sizeof(double) +
           sizeof(geometry::Point2));
  const std::size_t spectrum_bytes =
      kle_.eigenvalues().size() * sizeof(double) +
      kle_.coefficients().rows() * kle_.coefficients().cols() * sizeof(double);
  // The spatial locator stores one bucket entry per triangle on average
  // plus grid overhead; 2x the triangle count is a fair charge.
  const std::size_t locator_bytes =
      2 * mesh_->num_triangles() * sizeof(std::size_t);
  return mesh_bytes + spectrum_bytes + locator_bytes;
}

void append_artifact_config(std::vector<std::uint8_t>& out,
                            const KleArtifactConfig& config) {
  put_string(out, config.kernel_id);
  put_u32(out, static_cast<std::uint32_t>(config.kernel_params.size()));
  for (double p : config.kernel_params) put_f64(out, p);
  put_f64(out, config.die.min.x);
  put_f64(out, config.die.min.y);
  put_f64(out, config.die.max.x);
  put_f64(out, config.die.max.y);
  put_u32(out, static_cast<std::uint32_t>(config.mesh.kind));
  put_u64(out, config.mesh.target_triangles);
  put_f64(out, config.mesh.area_fraction);
  put_u64(out, config.mesh.mesher_seed);
  put_u32(out, static_cast<std::uint32_t>(config.quadrature));
  put_u64(out, config.num_eigenpairs);
}

KleArtifactConfig read_artifact_config(wire::ByteReader& r) {
  KleArtifactConfig config;
  config.kernel_id = r.string();
  const std::uint32_t num_params = r.u32();
  // need_count, not need(num_params * 8): the product wraps in u32
  // arithmetic for num_params > 2^29 and would pass the check.
  r.need_count(num_params, 8, "kernel params");
  config.kernel_params.resize(num_params);
  for (auto& p : config.kernel_params) p = r.f64();
  config.die.min.x = r.f64();
  config.die.min.y = r.f64();
  config.die.max.x = r.f64();
  config.die.max.y = r.f64();
  const std::uint32_t mesh_kind = r.u32();
  if (mesh_kind > static_cast<std::uint32_t>(MeshSpec::Kind::kPaperRefined))
    throw Error("kle_io: unknown mesh spec kind " + std::to_string(mesh_kind),
                r.code());
  config.mesh.kind = static_cast<MeshSpec::Kind>(mesh_kind);
  config.mesh.target_triangles = r.u64();
  config.mesh.area_fraction = r.f64();
  config.mesh.mesher_seed = r.u64();
  const std::uint32_t quadrature = r.u32();
  if (quadrature > static_cast<std::uint32_t>(core::QuadratureRule::kSymmetric7))
    throw Error("kle_io: unknown quadrature rule " + std::to_string(quadrature),
                r.code());
  config.quadrature = static_cast<core::QuadratureRule>(quadrature);
  config.num_eigenpairs = r.u64();
  return config;
}

std::vector<std::uint8_t> encode_kle(const StoredKleResult& stored) {
  std::vector<std::uint8_t> payload;
  const KleArtifactConfig& config = stored.config();
  const mesh::TriMesh& mesh = stored.mesh();
  const core::KleResult& kle = stored.kle();
  payload.reserve(64 + config.kernel_id.size() +
                  mesh.num_vertices() * 16 + mesh.num_triangles() * 24 +
                  kle.eigenvalues().size() * 8 +
                  kle.coefficients().rows() * kle.coefficients().cols() * 8);

  append_artifact_config(payload, config);

  // Mesh.
  put_u64(payload, mesh.num_vertices());
  put_u64(payload, mesh.num_triangles());
  for (const auto& v : mesh.vertices()) {
    put_f64(payload, v.x);
    put_f64(payload, v.y);
  }
  for (const auto& t : mesh.triangle_indices())
    for (std::size_t corner : t) put_u64(payload, corner);

  // Spectrum.
  put_u64(payload, kle.eigenvalues().size());
  for (double lambda : kle.eigenvalues()) put_f64(payload, lambda);
  const linalg::Matrix& d = kle.coefficients();
  put_u64(payload, d.rows());
  put_u64(payload, d.cols());
  for (std::size_t i = 0; i < d.rows(); ++i)
    for (std::size_t j = 0; j < d.cols(); ++j) put_f64(payload, d(i, j));

  std::vector<std::uint8_t> out;
  out.reserve(payload.size() + 20);
  out.insert(out.end(), kMagic.begin(), kMagic.end());
  put_u32(out, kKleFormatVersion);
  put_u64(out, payload.size());
  out.insert(out.end(), payload.begin(), payload.end());
  put_u32(out, crc32(payload.data(), payload.size()));
  return out;
}

StoredKleResult decode_kle(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < 20)
    throw Error("kle_io: truncated artifact (shorter than header)",
                ErrorCode::kCorruptArtifact);
  if (!std::equal(kMagic.begin(), kMagic.end(), bytes.begin()))
    throw Error("kle_io: bad magic (not a .sckl artifact)",
                ErrorCode::kCorruptArtifact);

  wire::ByteReader header(bytes.data() + 4, bytes.size() - 4,
                          ErrorCode::kCorruptArtifact, "kle artifact header");
  const std::uint32_t version = header.u32();
  if (version != kKleFormatVersion)
    throw Error("kle_io: unsupported format version " +
                    std::to_string(version) + " (this build reads version " +
                    std::to_string(kKleFormatVersion) + ")",
                ErrorCode::kCorruptArtifact);
  const std::uint64_t payload_size = header.u64();
  if (bytes.size() < 16 + payload_size + 4)
    throw Error("kle_io: truncated artifact (payload shorter than header "
                "declares)",
                ErrorCode::kCorruptArtifact);
  const std::uint8_t* payload = bytes.data() + 16;

  wire::ByteReader trailer(payload + payload_size, 4,
                           ErrorCode::kCorruptArtifact, "kle artifact crc");
  const std::uint32_t stored_crc = trailer.u32();
  const std::uint32_t actual_crc =
      crc32(payload, static_cast<std::size_t>(payload_size));
  if (stored_crc != actual_crc)
    throw Error("kle_io: checksum mismatch (artifact is corrupted)",
                ErrorCode::kCorruptArtifact);

  wire::ByteReader r(payload, static_cast<std::size_t>(payload_size),
                     ErrorCode::kCorruptArtifact, "kle artifact");

  KleArtifactConfig config = read_artifact_config(r);

  const std::uint64_t num_vertices = r.u64();
  const std::uint64_t num_triangles = r.u64();
  // Guard the multiplications below against absurd counts from a payload
  // that passed CRC (e.g. a hand-built file).
  if (num_vertices > payload_size || num_triangles > payload_size)
    throw Error("kle_io: implausible mesh size in artifact",
                ErrorCode::kCorruptArtifact);
  std::vector<geometry::Point2> vertices(num_vertices);
  for (auto& v : vertices) {
    v.x = r.f64();
    v.y = r.f64();
  }
  std::vector<mesh::TriMesh::TriangleIndices> triangles(num_triangles);
  for (auto& t : triangles)
    for (auto& corner : t) corner = static_cast<std::size_t>(r.u64());
  auto mesh = std::make_shared<const mesh::TriMesh>(std::move(vertices),
                                                    std::move(triangles));

  const std::uint64_t num_values = r.u64();
  if (num_values > payload_size)
    throw Error("kle_io: implausible eigenvalue count in artifact",
                ErrorCode::kCorruptArtifact);
  linalg::Vector eigenvalues(num_values);
  for (auto& lambda : eigenvalues) lambda = r.f64();

  const std::uint64_t rows = r.u64();
  const std::uint64_t cols = r.u64();
  if (rows > payload_size || cols > payload_size)
    throw Error("kle_io: implausible coefficient shape in artifact",
                ErrorCode::kCorruptArtifact);
  linalg::Matrix coefficients(static_cast<std::size_t>(rows),
                              static_cast<std::size_t>(cols));
  for (std::size_t i = 0; i < coefficients.rows(); ++i)
    for (std::size_t j = 0; j < coefficients.cols(); ++j)
      coefficients(i, j) = r.f64();

  if (r.remaining() != 0)
    throw Error("kle_io: trailing bytes after payload (corrupt or "
                "mis-declared size)",
                ErrorCode::kCorruptArtifact);

  return StoredKleResult(std::move(config), std::move(mesh),
                         std::move(eigenvalues), std::move(coefficients));
}

void write_kle_file(const std::string& path, const StoredKleResult& stored) {
  if (robust::fault_injected(robust::FaultSite::kStoreWrite))
    throw Error("kle_io: write failure injected at fault site 'store_write' "
                "for '" + path + "'",
                ErrorCode::kIoTransient);
  const std::vector<std::uint8_t> bytes = encode_kle(stored);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr)
    throw Error("kle_io: cannot open '" + path + "' for writing",
                ErrorCode::kIoTransient);
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  bool durable = std::fflush(f) == 0;
  // A crash here leaves the bytes in the page cache only; after a real power
  // loss the tmp file may be empty, torn, or absent — never the final name.
  robust::crash_point(robust::FaultSite::kStoreWritePreFsync);
#if defined(__unix__) || defined(__APPLE__)
  durable = durable && ::fsync(::fileno(f)) == 0;
#endif
  const bool closed = std::fclose(f) == 0;
  if (written != bytes.size() || !durable || !closed)
    throw Error("kle_io: short write to '" + path + "'",
                ErrorCode::kIoTransient);
}

void fsync_directory(const std::string& dir) {
#if defined(__unix__) || defined(__APPLE__)
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
#else
  (void)dir;
#endif
}

StoredKleResult read_kle_file(const std::string& path) {
  if (robust::fault_injected(robust::FaultSite::kStoreRead))
    throw Error("kle_io: read failure injected at fault site 'store_read' "
                "for '" + path + "'",
                ErrorCode::kIoTransient);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr)
    throw Error("kle_io: cannot open '" + path + "' for reading",
                ErrorCode::kIoTransient);
  std::vector<std::uint8_t> bytes;
  std::array<std::uint8_t, 1 << 16> chunk;
  std::size_t got = 0;
  while ((got = std::fread(chunk.data(), 1, chunk.size(), f)) > 0)
    bytes.insert(bytes.end(), chunk.begin(), chunk.begin() + got);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error)
    throw Error("kle_io: read error on '" + path + "'",
                ErrorCode::kIoTransient);
  try {
    return decode_kle(bytes);
  } catch (const Error& e) {
    // Preserve the code — the artifact store dispatches on it (transient ->
    // retry, corrupt -> quarantine).
    throw e.with_context("kle_io: while reading '" + path + "'");
  }
}

}  // namespace sckl::store
