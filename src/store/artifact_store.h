// Content-addressed repository of solved KLE artifacts.
//
// The paper's economics (Sec. 5, Algorithm 2) are "decompose once, sample
// forever": the Galerkin assembly + eigensolve dominate setup, while the
// downstream Monte Carlo only needs (eigenvalues, coefficients, mesh). The
// store makes that split operational:
//
//   memory LRU  ->  <root>/<hex key>.sckl on disk  ->  solve_kle fallback
//
// Keys are 64-bit content hashes of the artifact configuration (key_hash.h),
// so any parameter change produces a new file and stale artifacts can never
// be served for a different configuration. Disk writes go through a unique
// tmp file followed by std::filesystem::rename, which is atomic on POSIX —
// concurrent processes may race to solve the same key, but readers only ever
// see complete, checksummed files.
//
// Failure handling (reaction keyed on sckl::ErrorCode):
//   kIoTransient    read/write retried with bounded backoff (StoreOptions::
//                   retry); reads that stay broken fall back to a fresh
//                   solve, writes that stay broken degrade to memory-only.
//   kCorruptArtifact the file is quarantined — renamed to <key>.sckl.bad so
//                   the evidence survives for post-mortem instead of being
//                   silently rewritten — and the artifact is re-solved.
// Every reaction is counted in StoreHealth (health()). gc() deletes
// orphaned tmp files, invalid/misnamed artifacts, and quarantined files;
// ls() lists quarantined entries alongside healthy ones.
#pragma once

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "robust/retry.h"
#include "store/kle_io.h"
#include "store/lru_cache.h"

namespace sckl::store {

/// Tuning knobs of a KleArtifactStore.
struct StoreOptions {
  std::size_t cache_bytes = std::size_t{256} << 20;  // in-memory LRU budget
  bool write_through = true;  // persist freshly solved artifacts to disk
  robust::RetryPolicy retry;  // bounded backoff for transient disk I/O
};

/// Resilience telemetry: how often the store had to react to a fault.
/// All-zero on a healthy filesystem.
struct StoreHealth {
  std::size_t read_retries = 0;      // transient read failures retried
  std::size_t write_retries = 0;     // transient write failures retried
  std::size_t failed_reads = 0;      // reads abandoned after retries -> solve
  std::size_t failed_writes = 0;     // writes abandoned -> memory-only result
  std::size_t quarantined = 0;       // corrupt artifacts moved to .sckl.bad
};

/// Where a get_or_compute() answer came from.
enum class FetchSource {
  kMemory,  // in-process LRU hit
  kDisk,    // validated read of <root>/<key>.sckl
  kSolved,  // full Galerkin + eigensolve fallback
};

const char* to_string(FetchSource source);

/// One artifact fetch: the (shared, immutable) result plus provenance.
struct FetchResult {
  std::shared_ptr<const StoredKleResult> artifact;
  FetchSource source = FetchSource::kSolved;
  double seconds = 0.0;  // wall time of this fetch
};

/// Directory-listing entry of ls().
struct StoreEntry {
  std::string key;             // 16-hex-digit file stem
  std::uintmax_t file_bytes = 0;
  bool quarantined = false;    // true for <key>.sckl.bad evidence files
};

/// Content-hash keyed repository with an in-memory LRU front.
class KleArtifactStore {
 public:
  /// Opens (creating if needed) the repository rooted at `root`.
  explicit KleArtifactStore(std::filesystem::path root,
                            const StoreOptions& options = {});

  /// Returns the artifact for `config`, consulting memory, then disk, then
  /// solving with `kernel` (and persisting the result). `kernel` must be the
  /// kernel `config` describes — describe_kernel() builds matching ids.
  FetchResult get_or_compute(const KleArtifactConfig& config,
                             const kernels::CovarianceKernel& kernel);

  /// True when a validated artifact for `config` exists on disk.
  bool contains(const KleArtifactConfig& config) const;

  /// On-disk path an artifact for `config` lives at (whether or not it
  /// exists yet).
  std::filesystem::path path_for(const KleArtifactConfig& config) const;

  /// All *.sckl entries currently in the repository (validity not checked),
  /// plus quarantined *.sckl.bad files flagged as such.
  std::vector<StoreEntry> ls() const;

  /// Removes orphaned tmp files, artifacts that fail validation or whose
  /// content hash disagrees with their file name, and quarantined .sckl.bad
  /// files; returns files deleted.
  std::size_t gc();

  /// In-memory cache counters.
  CacheStats cache_stats() const { return cache_.stats(); }

  /// Fault-reaction counters accumulated over this store's lifetime.
  StoreHealth health() const;

  /// Drops the in-memory cache (disk is untouched); for warm/cold timing.
  void drop_memory_cache() { cache_.clear(); }

  const std::filesystem::path& root() const { return root_; }

 private:
  /// Moves a broken artifact aside to <name>.bad; counts it.
  void quarantine(const std::filesystem::path& path);

  std::filesystem::path root_;
  StoreOptions options_;
  LruCache<std::uint64_t, StoredKleResult> cache_;
  std::atomic<std::size_t> read_retries_{0};
  std::atomic<std::size_t> write_retries_{0};
  std::atomic<std::size_t> failed_reads_{0};
  std::atomic<std::size_t> failed_writes_{0};
  std::atomic<std::size_t> quarantined_{0};
};

}  // namespace sckl::store
