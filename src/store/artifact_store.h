// Content-addressed repository of solved KLE artifacts.
//
// The paper's economics (Sec. 5, Algorithm 2) are "decompose once, sample
// forever": the Galerkin assembly + eigensolve dominate setup, while the
// downstream Monte Carlo only needs (eigenvalues, coefficients, mesh). The
// store makes that split operational:
//
//   memory LRU  ->  <root>/<hex key>.sckl on disk  ->  solve_kle fallback
//
// Keys are 64-bit content hashes of the artifact configuration (key_hash.h),
// so any parameter change produces a new file and stale artifacts can never
// be served for a different configuration.
//
// Crash consistency & multi-process safety. One root may be shared by many
// processes, any of which can die at any instant. The publish protocol is
//
//   write <key>.sckl.<pid>.<seq>.tmp  ->  fsync(tmp)  ->  rename to
//   <key>.sckl  ->  fsync(root directory)
//
// so a final name only ever maps to a complete, fsync-durable, checksummed
// file; a crash at any point leaves at worst an orphaned tmp file that
// fsck()/gc() reap. Coordination uses advisory flock (file_lock.h), which
// the kernel releases when a holder dies: every read/write operation holds
// <root>/store.lock shared, gc()/fsck() hold it exclusive, and a cold-key
// solve holds <key>.lock exclusive — N processes (or threads) racing on the
// same cold key perform exactly one eigensolve; the rest wake up, re-check
// the disk, and load the winner's artifact (StoreHealth::deduped_solves).
//
// Failure handling (reaction keyed on sckl::ErrorCode):
//   kIoTransient    read/write retried with bounded backoff (StoreOptions::
//                   retry); reads that stay broken fall back to a fresh
//                   solve, writes that stay broken degrade to memory-only.
//   kCorruptArtifact the file is quarantined — renamed to <key>.sckl.bad so
//                   the evidence survives for post-mortem instead of being
//                   silently rewritten — and the artifact is re-solved.
// Every reaction is counted in StoreHealth (health()). gc() deletes
// orphaned tmp files, stale lock files, invalid/misnamed artifacts, and
// quarantined files (dry-run supported); ls() lists quarantined entries
// alongside healthy ones; fsck() (recovery.h) is the conservative
// startup-repair variant that quarantines instead of deleting.
#pragma once

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "robust/retry.h"
#include "store/kle_io.h"
#include "store/lru_cache.h"
#include "store/recovery.h"

namespace sckl::store {

/// Tuning knobs of a KleArtifactStore.
struct StoreOptions {
  std::size_t cache_bytes = std::size_t{256} << 20;  // in-memory LRU budget
  bool write_through = true;  // persist freshly solved artifacts to disk
  bool fsck_on_open = false;  // run a repairing fsck() pass in the ctor
  robust::RetryPolicy retry;  // bounded backoff for transient disk I/O
};

/// Resilience telemetry: how often the store had to react to a fault.
/// All-zero on a healthy filesystem with uncontended keys.
struct StoreHealth {
  std::size_t read_retries = 0;      // transient read failures retried
  std::size_t write_retries = 0;     // transient write failures retried
  std::size_t failed_reads = 0;      // reads abandoned after retries -> solve
  std::size_t failed_writes = 0;     // writes abandoned -> memory-only result
  std::size_t quarantined = 0;       // corrupt artifacts moved to .sckl.bad
  std::size_t deduped_solves = 0;    // stampedes resolved by the per-key lock:
                                     // waited, re-checked, loaded instead of
                                     // re-solving

  std::size_t total() const {
    return read_retries + write_retries + failed_reads + failed_writes +
           quarantined + deduped_solves;
  }
};

/// One-line human-readable rendering of the counters.
std::string to_string(const StoreHealth& health);

/// Where a get_or_compute() answer came from.
enum class FetchSource {
  kMemory,  // in-process LRU hit
  kDisk,    // validated read of <root>/<key>.sckl
  kSolved,  // full Galerkin + eigensolve fallback
};

const char* to_string(FetchSource source);

/// One artifact fetch: the (shared, immutable) result plus provenance.
struct FetchResult {
  std::shared_ptr<const StoredKleResult> artifact;
  FetchSource source = FetchSource::kSolved;
  double seconds = 0.0;  // wall time of this fetch
};

/// Directory-listing entry of ls().
struct StoreEntry {
  std::string key;             // 16-hex-digit file stem
  std::uintmax_t file_bytes = 0;
  bool quarantined = false;    // true for <key>.sckl.bad evidence files
};

/// Tuning of one gc() sweep.
struct GcOptions {
  bool dry_run = false;            // plan and report, delete nothing
  double tmp_max_age_seconds = 0;  // orphaned tmp younger than this is kept
};

/// One file gc() deleted or (dry-run) would delete, with the reason.
struct GcCandidate {
  std::filesystem::path path;
  std::string reason;  // "orphaned tmp", "stale lock", "corrupt", ...
};

/// Outcome of one gc() sweep.
struct GcReport {
  std::vector<GcCandidate> candidates;  // everything eligible for deletion
  std::size_t removed = 0;              // actually deleted (0 under dry_run)
};

/// Content-hash keyed repository with an in-memory LRU front.
class KleArtifactStore {
 public:
  /// Opens (creating if needed) the repository rooted at `root`. With
  /// StoreOptions::fsck_on_open, runs a repairing recovery pass first.
  explicit KleArtifactStore(std::filesystem::path root,
                            const StoreOptions& options = {});

  /// Returns the artifact for `config`, consulting memory, then disk, then
  /// solving with `kernel` (and persisting the result). `kernel` must be the
  /// kernel `config` describes — describe_kernel() builds matching ids.
  /// Cold keys are serialized on an advisory per-key lock so concurrent
  /// callers — threads or processes — run the eigensolve exactly once.
  FetchResult get_or_compute(const KleArtifactConfig& config,
                             const kernels::CovarianceKernel& kernel);

  /// True when a validated artifact for `config` exists on disk.
  bool contains(const KleArtifactConfig& config) const;

  /// On-disk path an artifact for `config` lives at (whether or not it
  /// exists yet).
  std::filesystem::path path_for(const KleArtifactConfig& config) const;

  /// Advisory lock file guarding the solve of `config`'s key.
  std::filesystem::path lock_path_for(const KleArtifactConfig& config) const;

  /// All *.sckl entries currently in the repository (validity not checked),
  /// plus quarantined *.sckl.bad files flagged as such.
  std::vector<StoreEntry> ls() const;

  /// Sweeps the repository under the exclusive store lock: orphaned tmp
  /// files (older than GcOptions::tmp_max_age_seconds), stale lock files,
  /// artifacts that fail validation or whose content hash disagrees with
  /// their file name, and quarantined .sckl.bad files. Dry-run reports the
  /// plan without deleting.
  GcReport gc(const GcOptions& options);

  /// Convenience sweep with default options; returns files deleted.
  std::size_t gc() { return gc(GcOptions{}).removed; }

  /// Runs a recovery pass (recovery.h) over this root.
  FsckResult fsck(const FsckOptions& options = {}) const;

  /// In-memory cache counters.
  CacheStats cache_stats() const { return cache_.stats(); }

  /// Fault-reaction counters accumulated over this store's lifetime.
  StoreHealth health() const;

  /// Drops the in-memory cache (disk is untouched); for warm/cold timing.
  void drop_memory_cache() { cache_.clear(); }

  const std::filesystem::path& root() const { return root_; }

 private:
  /// Moves a broken artifact aside to <name>.bad; counts it.
  void quarantine(const std::filesystem::path& path);

  /// Durable atomic publish: unique tmp + fsync + rename + directory fsync.
  /// Throws kIoTransient on failure (tmp is cleaned up best-effort).
  void publish(const std::filesystem::path& path, const StoredKleResult& solved);

  /// Attempts a validated disk load of `key` at `path`; returns nullptr on
  /// miss and on failures (which are counted / quarantined as usual).
  std::shared_ptr<const StoredKleResult> load_from_disk(
      std::uint64_t key, const std::filesystem::path& path);

  std::filesystem::path root_;
  StoreOptions options_;
  LruCache<std::uint64_t, StoredKleResult> cache_;
  std::atomic<std::size_t> read_retries_{0};
  std::atomic<std::size_t> write_retries_{0};
  std::atomic<std::size_t> failed_reads_{0};
  std::atomic<std::size_t> failed_writes_{0};
  std::atomic<std::size_t> quarantined_{0};
  std::atomic<std::size_t> deduped_solves_{0};
};

}  // namespace sckl::store
