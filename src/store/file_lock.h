// Advisory flock(2)-based file locking for the artifact repository.
//
// A store root is shared by every process that points at it (the ROADMAP
// north-star is many concurrent SSTA jobs over one repository), so the store
// needs a cross-process mutual-exclusion primitive that (a) dies with its
// holder — a `kill -9`'d writer must never leave the repository wedged — and
// (b) costs nothing on the fast path. BSD flock gives exactly that: the lock
// is attached to the open file description, so the kernel releases it the
// instant the process exits, crashed or not. A *stale lock file* left behind
// is therefore just an empty unheld file, never a stuck lock; fsck/gc reap
// them by probing.
//
// Two lock files structure the repository (see artifact_store.cpp):
//
//   <root>/store.lock   shared by every reader/writer operation, exclusive
//                       for gc()/fsck() — so sweeps never race in-flight
//                       publications or key-lock acquisitions.
//   <root>/<key>.lock   exclusive around the solve+publish of one artifact —
//                       N processes (or threads; each acquisition opens its
//                       own descriptor) requesting the same cold key serialize
//                       here, re-check the disk, and N-1 of them load the
//                       winner's file instead of re-running the eigensolve.
//
// Lock ordering: store.lock first, then at most one <key>.lock — a cycle is
// impossible. On platforms without flock the lock degrades to a no-op
// (held() still reports true) so single-process use keeps working.
#pragma once

#include <filesystem>
#include <optional>

namespace sckl::store {

/// Move-only RAII holder of one advisory lock. Default-constructed (or
/// moved-from) instances hold nothing.
class FileLock {
 public:
  enum class Mode {
    kShared,     // many concurrent holders (readers, writers of other keys)
    kExclusive,  // sole holder (per-key solve, gc, fsck)
  };

  FileLock() = default;
  FileLock(FileLock&& other) noexcept;
  FileLock& operator=(FileLock&& other) noexcept;
  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;
  ~FileLock();

  /// Blocks until the lock on `path` is acquired, creating the file if
  /// needed. Throws sckl::Error (kIoTransient) when the file cannot be
  /// opened. EINTR is retried.
  static FileLock acquire(const std::filesystem::path& path, Mode mode);

  /// Non-blocking acquire; nullopt when another holder has a conflicting
  /// lock right now.
  static std::optional<FileLock> try_acquire(const std::filesystem::path& path,
                                             Mode mode);

  /// True while this object holds the lock (always true on platforms where
  /// flock degrades to a no-op).
  bool held() const { return held_; }

  /// Drops the lock early (idempotent; the destructor calls it too).
  void release();

  const std::filesystem::path& path() const { return path_; }

 private:
  FileLock(std::filesystem::path path, int fd, bool held)
      : path_(std::move(path)), fd_(fd), held_(held) {}

  std::filesystem::path path_;
  int fd_ = -1;
  bool held_ = false;
};

/// Probes whether any process currently holds `path` (shared or exclusive):
/// tries a non-blocking exclusive lock and releases it immediately on
/// success. A missing file counts as unheld. Used by `kle_store_tool
/// lock-status` and by fsck/gc to tell a stale lock file from a live one.
bool lock_is_held(const std::filesystem::path& path);

}  // namespace sckl::store
