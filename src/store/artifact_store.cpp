#include "store/artifact_store.h"

#include <atomic>

#include "common/error.h"
#include "common/stopwatch.h"

namespace sckl::store {

namespace fs = std::filesystem;

namespace {

/// Process-unique suffix so concurrent writers never share a tmp file.
std::string unique_tmp_suffix() {
  static std::atomic<std::uint64_t> counter{0};
  return ".tmp" + std::to_string(counter.fetch_add(1));
}

bool is_sckl_file(const fs::directory_entry& entry) {
  return entry.is_regular_file() && entry.path().extension() == ".sckl";
}

bool is_quarantined_file(const fs::directory_entry& entry) {
  return entry.is_regular_file() && entry.path().extension() == ".bad" &&
         entry.path().stem().extension() == ".sckl";
}

bool is_transient(const Error& e) {
  return e.code() == ErrorCode::kIoTransient;
}

}  // namespace

const char* to_string(FetchSource source) {
  switch (source) {
    case FetchSource::kMemory: return "memory";
    case FetchSource::kDisk: return "disk";
    case FetchSource::kSolved: return "solved";
  }
  return "unknown";
}

KleArtifactStore::KleArtifactStore(fs::path root, const StoreOptions& options)
    : root_(std::move(root)), options_(options), cache_(options.cache_bytes) {
  std::error_code ec;
  fs::create_directories(root_, ec);
  require(!ec && fs::is_directory(root_),
          "KleArtifactStore: cannot create repository root '" +
              root_.string() + "'");
}

fs::path KleArtifactStore::path_for(const KleArtifactConfig& config) const {
  return root_ / (key_string(artifact_key(config)) + ".sckl");
}

FetchResult KleArtifactStore::get_or_compute(
    const KleArtifactConfig& config, const kernels::CovarianceKernel& kernel) {
  Stopwatch watch;
  const std::uint64_t key = artifact_key(config);

  FetchResult result;
  if (auto cached = cache_.get(key)) {
    result.artifact = std::move(cached);
    result.source = FetchSource::kMemory;
    result.seconds = watch.seconds();
    return result;
  }

  const fs::path path = root_ / (key_string(key) + ".sckl");
  std::error_code ec;
  if (fs::exists(path, ec) && !ec) {
    robust::RetryStats stats;
    try {
      // Transient read failures (EIO, injected store_read faults) are
      // retried with bounded backoff before we give up on the disk copy.
      auto loaded = std::make_shared<const StoredKleResult>(robust::retry_bounded(
          options_.retry, [&] { return read_kle_file(path.string()); },
          is_transient, &stats));
      read_retries_ += static_cast<std::size_t>(stats.retried);
      // Defend against renamed/colliding files: the stored config must hash
      // back to the file's own key.
      if (artifact_key(loaded->config()) == key) {
        cache_.put(key, loaded, loaded->approximate_bytes());
        result.artifact = std::move(loaded);
        result.source = FetchSource::kDisk;
        result.seconds = watch.seconds();
        return result;
      }
      // Valid file, wrong content for its name: quarantine the evidence and
      // re-solve (the rewrite below replaces the name atomically).
      quarantine(path);
    } catch (const Error& e) {
      read_retries_ += static_cast<std::size_t>(stats.retried);
      ++failed_reads_;
      if (e.code() == ErrorCode::kCorruptArtifact)
        quarantine(path);  // keep the broken bytes for post-mortem
      // Either way: fall through to a fresh solve, which rewrites the file
      // atomically. The fallback costs a solve, never the answer.
    }
  }

  auto solved =
      std::make_shared<const StoredKleResult>(StoredKleResult::solve(config, kernel));
  if (options_.write_through) {
    robust::RetryStats stats;
    try {
      robust::retry_bounded(
          options_.retry,
          [&] {
            const fs::path tmp = path.string() + unique_tmp_suffix();
            write_kle_file(tmp.string(), *solved);
            std::error_code rename_ec;
            fs::rename(tmp, path, rename_ec);
            if (rename_ec) {
              fs::remove(tmp, rename_ec);
              throw Error("KleArtifactStore: cannot publish artifact to '" +
                              path.string() + "'",
                          ErrorCode::kIoTransient);
            }
          },
          is_transient, &stats);
      write_retries_ += static_cast<std::size_t>(stats.retried);
    } catch (const Error& e) {
      if (!is_transient(e)) throw;
      // Persistence failed even after retries; the solved artifact is still
      // perfectly usable — degrade to memory-only and count the loss.
      write_retries_ += static_cast<std::size_t>(stats.retried);
      ++failed_writes_;
    }
  }
  cache_.put(key, solved, solved->approximate_bytes());
  result.artifact = std::move(solved);
  result.source = FetchSource::kSolved;
  result.seconds = watch.seconds();
  return result;
}

void KleArtifactStore::quarantine(const fs::path& path) {
  std::error_code ec;
  const fs::path bad = path.string() + ".bad";
  fs::rename(path, bad, ec);
  if (ec) {
    // Can't even move it aside (read-only dir?); delete so the poisoned file
    // stops shadowing the re-solved artifact. Losing evidence beats serving
    // corruption.
    fs::remove(path, ec);
  }
  ++quarantined_;
}

StoreHealth KleArtifactStore::health() const {
  StoreHealth h;
  h.read_retries = read_retries_.load();
  h.write_retries = write_retries_.load();
  h.failed_reads = failed_reads_.load();
  h.failed_writes = failed_writes_.load();
  h.quarantined = quarantined_.load();
  return h;
}

bool KleArtifactStore::contains(const KleArtifactConfig& config) const {
  const fs::path path = path_for(config);
  std::error_code ec;
  if (!fs::exists(path, ec) || ec) return false;
  try {
    const StoredKleResult loaded = robust::retry_bounded(
        options_.retry, [&] { return read_kle_file(path.string()); },
        is_transient);
    return artifact_key(loaded.config()) == artifact_key(config);
  } catch (const Error&) {
    return false;
  }
}

std::vector<StoreEntry> KleArtifactStore::ls() const {
  std::vector<StoreEntry> entries;
  for (const auto& entry : fs::directory_iterator(root_)) {
    const bool quarantined = is_quarantined_file(entry);
    if (!is_sckl_file(entry) && !quarantined) continue;
    StoreEntry e;
    // A quarantined "<key>.sckl.bad" reports the same key as the healthy
    // file it used to be.
    e.key = quarantined ? entry.path().stem().stem().string()
                        : entry.path().stem().string();
    e.quarantined = quarantined;
    std::error_code ec;
    e.file_bytes = entry.file_size(ec);
    entries.push_back(std::move(e));
  }
  return entries;
}

std::size_t KleArtifactStore::gc() {
  std::size_t removed = 0;
  std::vector<fs::path> doomed;
  for (const auto& entry : fs::directory_iterator(root_)) {
    if (!entry.is_regular_file()) continue;
    const fs::path& path = entry.path();
    const std::string name = path.filename().string();
    if (name.find(".sckl.tmp") != std::string::npos) {
      doomed.push_back(path);  // orphaned in-flight write
      continue;
    }
    if (is_quarantined_file(fs::directory_entry(path))) {
      doomed.push_back(path);  // quarantined evidence, post-mortem is over
      continue;
    }
    if (path.extension() != ".sckl") continue;
    try {
      const StoredKleResult loaded = robust::retry_bounded(
          options_.retry, [&] { return read_kle_file(path.string()); },
          is_transient);
      if (key_string(artifact_key(loaded.config())) != path.stem().string())
        doomed.push_back(path);  // renamed or hash-mismatched
    } catch (const Error& e) {
      // A read that stays transient after retries proves nothing about the
      // file; deleting on it would let a disk hiccup wipe healthy artifacts.
      if (e.code() != ErrorCode::kIoTransient)
        doomed.push_back(path);  // truncated / corrupted / wrong version
    }
  }
  for (const auto& path : doomed) {
    std::error_code ec;
    if (fs::remove(path, ec) && !ec) ++removed;
  }
  return removed;
}

}  // namespace sckl::store
