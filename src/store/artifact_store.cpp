#include "store/artifact_store.h"

#include <atomic>

#include "common/error.h"
#include "common/stopwatch.h"

namespace sckl::store {

namespace fs = std::filesystem;

namespace {

/// Process-unique suffix so concurrent writers never share a tmp file.
std::string unique_tmp_suffix() {
  static std::atomic<std::uint64_t> counter{0};
  return ".tmp" + std::to_string(counter.fetch_add(1));
}

bool is_sckl_file(const fs::directory_entry& entry) {
  return entry.is_regular_file() && entry.path().extension() == ".sckl";
}

}  // namespace

const char* to_string(FetchSource source) {
  switch (source) {
    case FetchSource::kMemory: return "memory";
    case FetchSource::kDisk: return "disk";
    case FetchSource::kSolved: return "solved";
  }
  return "unknown";
}

KleArtifactStore::KleArtifactStore(fs::path root, const StoreOptions& options)
    : root_(std::move(root)), options_(options), cache_(options.cache_bytes) {
  std::error_code ec;
  fs::create_directories(root_, ec);
  require(!ec && fs::is_directory(root_),
          "KleArtifactStore: cannot create repository root '" +
              root_.string() + "'");
}

fs::path KleArtifactStore::path_for(const KleArtifactConfig& config) const {
  return root_ / (key_string(artifact_key(config)) + ".sckl");
}

FetchResult KleArtifactStore::get_or_compute(
    const KleArtifactConfig& config, const kernels::CovarianceKernel& kernel) {
  Stopwatch watch;
  const std::uint64_t key = artifact_key(config);

  FetchResult result;
  if (auto cached = cache_.get(key)) {
    result.artifact = std::move(cached);
    result.source = FetchSource::kMemory;
    result.seconds = watch.seconds();
    return result;
  }

  const fs::path path = root_ / (key_string(key) + ".sckl");
  std::error_code ec;
  if (fs::exists(path, ec) && !ec) {
    try {
      auto loaded =
          std::make_shared<const StoredKleResult>(read_kle_file(path.string()));
      // Defend against renamed/colliding files: the stored config must hash
      // back to the file's own key.
      if (artifact_key(loaded->config()) == key) {
        cache_.put(key, loaded, loaded->approximate_bytes());
        result.artifact = std::move(loaded);
        result.source = FetchSource::kDisk;
        result.seconds = watch.seconds();
        return result;
      }
    } catch (const Error&) {
      // Truncated/corrupted/old-version artifact: fall through to a fresh
      // solve, which rewrites the file atomically.
    }
  }

  auto solved =
      std::make_shared<const StoredKleResult>(StoredKleResult::solve(config, kernel));
  if (options_.write_through) {
    const fs::path tmp = path.string() + unique_tmp_suffix();
    write_kle_file(tmp.string(), *solved);
    fs::rename(tmp, path, ec);
    if (ec) {
      fs::remove(tmp, ec);
      throw Error("KleArtifactStore: cannot publish artifact to '" +
                  path.string() + "'");
    }
  }
  cache_.put(key, solved, solved->approximate_bytes());
  result.artifact = std::move(solved);
  result.source = FetchSource::kSolved;
  result.seconds = watch.seconds();
  return result;
}

bool KleArtifactStore::contains(const KleArtifactConfig& config) const {
  const fs::path path = path_for(config);
  std::error_code ec;
  if (!fs::exists(path, ec) || ec) return false;
  try {
    const StoredKleResult loaded = read_kle_file(path.string());
    return artifact_key(loaded.config()) == artifact_key(config);
  } catch (const Error&) {
    return false;
  }
}

std::vector<StoreEntry> KleArtifactStore::ls() const {
  std::vector<StoreEntry> entries;
  for (const auto& entry : fs::directory_iterator(root_)) {
    if (!is_sckl_file(entry)) continue;
    StoreEntry e;
    e.key = entry.path().stem().string();
    std::error_code ec;
    e.file_bytes = entry.file_size(ec);
    entries.push_back(std::move(e));
  }
  return entries;
}

std::size_t KleArtifactStore::gc() {
  std::size_t removed = 0;
  std::vector<fs::path> doomed;
  for (const auto& entry : fs::directory_iterator(root_)) {
    if (!entry.is_regular_file()) continue;
    const fs::path& path = entry.path();
    const std::string name = path.filename().string();
    if (name.find(".sckl.tmp") != std::string::npos) {
      doomed.push_back(path);  // orphaned in-flight write
      continue;
    }
    if (path.extension() != ".sckl") continue;
    try {
      const StoredKleResult loaded = read_kle_file(path.string());
      if (key_string(artifact_key(loaded.config())) != path.stem().string())
        doomed.push_back(path);  // renamed or hash-mismatched
    } catch (const Error&) {
      doomed.push_back(path);  // truncated / corrupted / wrong version
    }
  }
  for (const auto& path : doomed) {
    std::error_code ec;
    if (fs::remove(path, ec) && !ec) ++removed;
  }
  return removed;
}

}  // namespace sckl::store
