#include "store/artifact_store.h"

#include <atomic>
#include <cstdio>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/stopwatch.h"
#include "obs/trace.h"
#include "robust/fault_injection.h"
#include "store/file_lock.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace sckl::store {

namespace fs = std::filesystem;

namespace {

std::uint64_t process_id() {
#if defined(__unix__) || defined(__APPLE__)
  return static_cast<std::uint64_t>(::getpid());
#else
  return 0;
#endif
}

/// Tmp name unique across processes (pid) and threads (sequence), so
/// concurrent writers never share an in-flight file and a crashed writer's
/// leftover is attributable: <key>.sckl.<pid>.<seq>.tmp
std::string unique_tmp_suffix() {
  static std::atomic<std::uint64_t> counter{0};
  return "." + std::to_string(process_id()) + "." +
         std::to_string(counter.fetch_add(1)) + ".tmp";
}

bool is_sckl_file(const fs::directory_entry& entry) {
  return entry.is_regular_file() && is_artifact_file(entry.path());
}

bool is_transient(const Error& e) {
  return e.code() == ErrorCode::kIoTransient;
}

}  // namespace

const char* to_string(FetchSource source) {
  switch (source) {
    case FetchSource::kMemory: return "memory";
    case FetchSource::kDisk: return "disk";
    case FetchSource::kSolved: return "solved";
  }
  return "unknown";
}

std::string to_string(const StoreHealth& health) {
  char buffer[200];
  std::snprintf(buffer, sizeof(buffer),
                "read_retries=%zu write_retries=%zu failed_reads=%zu "
                "failed_writes=%zu quarantined=%zu deduped_solves=%zu",
                health.read_retries, health.write_retries, health.failed_reads,
                health.failed_writes, health.quarantined,
                health.deduped_solves);
  return buffer;
}

KleArtifactStore::KleArtifactStore(fs::path root, const StoreOptions& options)
    : root_(std::move(root)), options_(options), cache_(options.cache_bytes) {
  std::error_code ec;
  fs::create_directories(root_, ec);
  require(!ec && fs::is_directory(root_),
          "KleArtifactStore: cannot create repository root '" +
              root_.string() + "'");
  if (options_.fsck_on_open) store::fsck(root_, FsckOptions{});
}

fs::path KleArtifactStore::path_for(const KleArtifactConfig& config) const {
  return root_ / (key_string(artifact_key(config)) + ".sckl");
}

fs::path KleArtifactStore::lock_path_for(const KleArtifactConfig& config) const {
  return root_ / (key_string(artifact_key(config)) + ".lock");
}

std::shared_ptr<const StoredKleResult> KleArtifactStore::load_from_disk(
    std::uint64_t key, const fs::path& path) {
  std::error_code ec;
  if (!fs::exists(path, ec) || ec) return nullptr;
  obs::Span span("store.disk_load");
  robust::RetryStats stats;
  try {
    // Transient read failures (EIO, injected store_read faults) are retried
    // with bounded backoff before we give up on the disk copy.
    auto loaded = std::make_shared<const StoredKleResult>(robust::retry_bounded(
        options_.retry, [&] { return read_kle_file(path.string()); },
        is_transient, &stats));
    read_retries_ += static_cast<std::size_t>(stats.retried);
    obs::counter("sckl.store.read_retries")
        .add(static_cast<std::uint64_t>(stats.retried));
    // Defend against renamed/colliding files: the stored config must hash
    // back to the file's own key.
    if (artifact_key(loaded->config()) == key) {
      cache_.put(key, loaded, loaded->approximate_bytes());
      return loaded;
    }
    // Valid file, wrong content for its name: quarantine the evidence and
    // re-solve (the rewrite replaces the name atomically).
    quarantine(path);
  } catch (const Error& e) {
    read_retries_ += static_cast<std::size_t>(stats.retried);
    obs::counter("sckl.store.read_retries")
        .add(static_cast<std::uint64_t>(stats.retried));
    ++failed_reads_;
    obs::counter("sckl.store.failed_reads").add(1);
    if (e.code() == ErrorCode::kCorruptArtifact)
      quarantine(path);  // keep the broken bytes for post-mortem
    // Either way: the caller falls through to a fresh solve, which rewrites
    // the file atomically. The fallback costs a solve, never the answer.
  }
  return nullptr;
}

void KleArtifactStore::publish(const fs::path& path,
                               const StoredKleResult& solved) {
  obs::Span span("store.publish");
  const fs::path tmp = path.string() + unique_tmp_suffix();
  // write_kle_file fsyncs the tmp bytes (and hosts the store_write fault
  // site plus the store_write_pre_fsync crash point).
  write_kle_file(tmp.string(), solved);
  // A kill here leaves a durable but unpublished tmp file: fsck/gc reap it,
  // and no reader ever saw a partial artifact under the final name.
  robust::crash_point(robust::FaultSite::kStoreWritePreRename);
  std::error_code rename_ec;
  fs::rename(tmp, path, rename_ec);
  if (rename_ec) {
    fs::remove(tmp, rename_ec);
    throw Error("KleArtifactStore: cannot publish artifact to '" +
                    path.string() + "'",
                ErrorCode::kIoTransient);
  }
  // A kill here loses only the *directory-entry* durability of the rename;
  // the artifact is already readable by every live process.
  robust::crash_point(robust::FaultSite::kStoreWritePostRename);
  fsync_directory(root_.string());
}

FetchResult KleArtifactStore::get_or_compute(
    const KleArtifactConfig& config, const kernels::CovarianceKernel& kernel) {
  obs::Span span("store.fetch");
  static obs::Counter& cache_hits = obs::counter("sckl.store.cache.hits");
  static obs::Counter& cache_misses = obs::counter("sckl.store.cache.misses");
  obs::Stopwatch watch;
  const std::uint64_t key = artifact_key(config);

  FetchResult result;
  if (auto cached = cache_.get(key)) {
    cache_hits.add(1);
    obs::counter("sckl.store.fetch.memory").add(1);
    result.artifact = std::move(cached);
    result.source = FetchSource::kMemory;
    result.seconds = watch.seconds();
    return result;
  }
  cache_misses.add(1);

  // Shared store lock for the rest of the fetch: publications and key-lock
  // acquisitions never overlap a gc()/fsck() sweep (which holds it
  // exclusively). Lock order is always store.lock, then one <key>.lock.
  const FileLock store_lock = [&] {
    obs::Span lock_span("store.lock_wait");
    return FileLock::acquire(root_ / kStoreLockName, FileLock::Mode::kShared);
  }();

  const fs::path path = root_ / (key_string(key) + ".sckl");
  if (auto loaded = load_from_disk(key, path)) {
    obs::counter("sckl.store.fetch.disk").add(1);
    result.artifact = std::move(loaded);
    result.source = FetchSource::kDisk;
    result.seconds = watch.seconds();
    return result;
  }

  // Cold key: take the per-key solve lock, then re-check both tiers — if we
  // blocked behind another thread or process solving the same key, its
  // result is there now and the expensive eigensolve is skipped entirely.
  const FileLock key_lock = [&] {
    obs::Span lock_span("store.lock_wait");
    return FileLock::acquire(root_ / (key_string(key) + ".lock"),
                             FileLock::Mode::kExclusive);
  }();
  if (auto cached = cache_.get(key)) {
    ++deduped_solves_;
    obs::counter("sckl.store.deduped_solves").add(1);
    obs::counter("sckl.store.fetch.memory").add(1);
    result.artifact = std::move(cached);
    result.source = FetchSource::kMemory;
    result.seconds = watch.seconds();
    return result;
  }
  if (auto loaded = load_from_disk(key, path)) {
    ++deduped_solves_;
    obs::counter("sckl.store.deduped_solves").add(1);
    obs::counter("sckl.store.fetch.disk").add(1);
    result.artifact = std::move(loaded);
    result.source = FetchSource::kDisk;
    result.seconds = watch.seconds();
    return result;
  }

  auto solved = [&] {
    obs::Span solve_span("store.solve");
    return std::make_shared<const StoredKleResult>(
        StoredKleResult::solve(config, kernel));
  }();
  if (options_.write_through) {
    robust::RetryStats stats;
    try {
      robust::retry_bounded(
          options_.retry, [&] { publish(path, *solved); }, is_transient,
          &stats);
      write_retries_ += static_cast<std::size_t>(stats.retried);
      obs::counter("sckl.store.write_retries")
          .add(static_cast<std::uint64_t>(stats.retried));
    } catch (const Error& e) {
      if (!is_transient(e)) throw;
      // Persistence failed even after retries; the solved artifact is still
      // perfectly usable — degrade to memory-only and count the loss.
      write_retries_ += static_cast<std::size_t>(stats.retried);
      obs::counter("sckl.store.write_retries")
          .add(static_cast<std::uint64_t>(stats.retried));
      ++failed_writes_;
      obs::counter("sckl.store.failed_writes").add(1);
    }
  }
  cache_.put(key, solved, solved->approximate_bytes());
  obs::counter("sckl.store.fetch.solved").add(1);
  result.artifact = std::move(solved);
  result.source = FetchSource::kSolved;
  result.seconds = watch.seconds();
  return result;
}

void KleArtifactStore::quarantine(const fs::path& path) {
  std::error_code ec;
  const fs::path bad = path.string() + ".bad";
  fs::rename(path, bad, ec);
  if (ec) {
    // Can't even move it aside (read-only dir?); delete so the poisoned file
    // stops shadowing the re-solved artifact. Losing evidence beats serving
    // corruption.
    fs::remove(path, ec);
  }
  ++quarantined_;
  obs::counter("sckl.store.quarantined").add(1);
}

StoreHealth KleArtifactStore::health() const {
  StoreHealth h;
  h.read_retries = read_retries_.load();
  h.write_retries = write_retries_.load();
  h.failed_reads = failed_reads_.load();
  h.failed_writes = failed_writes_.load();
  h.quarantined = quarantined_.load();
  h.deduped_solves = deduped_solves_.load();
  return h;
}

bool KleArtifactStore::contains(const KleArtifactConfig& config) const {
  const FileLock store_lock =
      FileLock::acquire(root_ / kStoreLockName, FileLock::Mode::kShared);
  const fs::path path = path_for(config);
  std::error_code ec;
  if (!fs::exists(path, ec) || ec) return false;
  try {
    const StoredKleResult loaded = robust::retry_bounded(
        options_.retry, [&] { return read_kle_file(path.string()); },
        is_transient);
    return artifact_key(loaded.config()) == artifact_key(config);
  } catch (const Error&) {
    return false;
  }
}

std::vector<StoreEntry> KleArtifactStore::ls() const {
  std::vector<StoreEntry> entries;
  for (const auto& entry : fs::directory_iterator(root_)) {
    if (!entry.is_regular_file()) continue;
    const bool quarantined = is_quarantine_file(entry.path());
    if (!is_sckl_file(entry) && !quarantined) continue;
    StoreEntry e;
    // A quarantined "<key>.sckl.bad" reports the same key as the healthy
    // file it used to be.
    e.key = quarantined ? entry.path().stem().stem().string()
                        : entry.path().stem().string();
    e.quarantined = quarantined;
    std::error_code ec;
    e.file_bytes = entry.file_size(ec);
    entries.push_back(std::move(e));
  }
  return entries;
}

GcReport KleArtifactStore::gc(const GcOptions& options) {
  obs::Span span("store.gc");
  // Exclusive store lock: no publication or solve is in flight, so every
  // tmp file is orphaned and every unheld lock file is stale by definition.
  const fs::path store_lock_path = root_ / kStoreLockName;
  const FileLock guard =
      FileLock::acquire(store_lock_path, FileLock::Mode::kExclusive);

  GcReport report;
  for (const auto& entry : fs::directory_iterator(root_)) {
    if (!entry.is_regular_file()) continue;
    const fs::path& path = entry.path();
    if (is_tmp_file(path)) {
      if (file_age_seconds(path) >= options.tmp_max_age_seconds)
        report.candidates.push_back({path, "orphaned tmp"});
      continue;
    }
    if (is_lock_file(path)) {
      if (path != store_lock_path && !lock_is_held(path))
        report.candidates.push_back({path, "stale lock"});
      continue;
    }
    if (is_quarantine_file(path)) {
      report.candidates.push_back({path, "quarantined evidence"});
      continue;
    }
    if (!is_artifact_file(path)) continue;
    try {
      const StoredKleResult loaded = robust::retry_bounded(
          options_.retry, [&] { return read_kle_file(path.string()); },
          is_transient);
      if (key_string(artifact_key(loaded.config())) != path.stem().string())
        report.candidates.push_back({path, "key mismatch"});
    } catch (const Error& e) {
      // A read that stays transient after retries proves nothing about the
      // file; deleting on it would let a disk hiccup wipe healthy artifacts.
      if (e.code() != ErrorCode::kIoTransient)
        report.candidates.push_back({path, "corrupt artifact"});
    }
  }
  if (options.dry_run) return report;
  for (const auto& candidate : report.candidates) {
    // A kill mid-sweep must leave committed artifacts intact — each deletion
    // below only ever targets debris, so stopping halfway is always safe.
    robust::crash_point(robust::FaultSite::kStoreGcMidSweep);
    std::error_code ec;
    if (fs::remove(candidate.path, ec) && !ec) ++report.removed;
  }
  obs::counter("sckl.store.gc.removed").add(report.removed);
  return report;
}

FsckResult KleArtifactStore::fsck(const FsckOptions& options) const {
  return store::fsck(root_, options);
}

}  // namespace sckl::store
