// Versioned binary serialization of solved KLEs.
//
// File layout (all multi-byte fields little-endian; doubles stored as their
// IEEE-754 bit patterns in a u64):
//
//   offset  size  field
//   0       4     magic "SCKL"
//   4       4     u32 format version (currently 1)
//   8       8     u64 payload size P in bytes
//   16      P     payload (below)
//   16+P    4     u32 CRC-32 (IEEE 802.3) of the payload bytes
//
// Payload, in order:
//   artifact config   kernel_id (u32 length + bytes), u32 param count +
//                     params (f64), die rectangle (4 f64), mesh spec
//                     (u32 kind, u64 target_triangles, f64 area_fraction,
//                     u64 mesher_seed), u32 quadrature, u64 num_eigenpairs
//   mesh              u64 num_vertices, u64 num_triangles, vertices
//                     (2 f64 each), triangle index triples (3 u64 each)
//   eigenvalues       u64 m, m f64 (descending, post-clamp)
//   coefficients      u64 rows, u64 cols, rows*cols f64 row-major
//
// Readers reject, with a diagnostic sckl::Error, anything that is truncated,
// carries the wrong magic, an unsupported version, or a payload whose CRC
// does not match — corruption is never silently accepted. Round-trips are
// bit-exact: every double survives unchanged through the u64 bit pattern.
//
// StoredKleResult is the ownership-fixing wrapper around core::KleResult:
// KleResult intentionally borrows its mesh (see kle_solver.h), which is
// wrong for deserialized artifacts that have no other owner. StoredKleResult
// keeps the mesh alive via shared_ptr and rebuilds the KleResult view on it,
// so artifacts are fully self-contained.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/wire.h"
#include "store/key_hash.h"

namespace sckl::store {

/// Current serialization format version.
inline constexpr std::uint32_t kKleFormatVersion = 1;

/// A solved KLE that owns every byte of its state, including the mesh.
class StoredKleResult {
 public:
  /// Wraps freshly solved or deserialized data. The mesh pointer must be
  /// non-null; eigenvalue/coefficient shapes are validated by KleResult.
  StoredKleResult(KleArtifactConfig config,
                  std::shared_ptr<const mesh::TriMesh> mesh,
                  linalg::Vector eigenvalues, linalg::Matrix coefficients);

  /// Solves the KLE described by `config` with `kernel` and wraps the
  /// result (the cache-miss path of the artifact store).
  static StoredKleResult solve(const KleArtifactConfig& config,
                               const kernels::CovarianceKernel& kernel);

  const KleArtifactConfig& config() const { return config_; }
  const mesh::TriMesh& mesh() const { return *mesh_; }
  std::shared_ptr<const mesh::TriMesh> mesh_ptr() const { return mesh_; }

  /// The standard KLE view (eigenvalues, coefficients, eigenfunction
  /// evaluation). Valid for the lifetime of this object.
  const core::KleResult& kle() const { return kle_; }

  /// Approximate resident size in bytes (mesh + spectrum + locator), used
  /// as the LRU charge of this artifact.
  std::size_t approximate_bytes() const;

 private:
  KleArtifactConfig config_;
  std::shared_ptr<const mesh::TriMesh> mesh_;
  core::KleResult kle_;  // views *mesh_, which this object keeps alive
};

/// Appends the artifact-config section of the payload (kernel id + params,
/// die rectangle, mesh spec, quadrature, eigenpair count) to `out`. Shared
/// with the serve protocol (serve/protocol.cpp), so a KleArtifactConfig is
/// encoded identically on disk and on the wire.
void append_artifact_config(std::vector<std::uint8_t>& out,
                            const KleArtifactConfig& config);

/// Inverse of append_artifact_config. Rejects unknown mesh-spec kinds and
/// quadrature rules; all errors carry the reader's error code (corrupt
/// artifact for files, protocol for network frames).
KleArtifactConfig read_artifact_config(wire::ByteReader& r);

/// Serializes to the format described above.
std::vector<std::uint8_t> encode_kle(const StoredKleResult& stored);

/// Parses an encoded artifact; throws sckl::Error on truncation, bad magic,
/// unsupported version, or checksum mismatch.
StoredKleResult decode_kle(const std::vector<std::uint8_t>& bytes);

/// Writes `stored` to `path` durably: the bytes are flushed *and fsync'd*
/// before the call returns, so a subsequent rename of `path` publishes a
/// file whose content survives power loss. Not atomic by itself — the
/// artifact store wraps this in a tmp-file + rename + directory-fsync dance;
/// direct callers get plain (but durable) semantics. I/O failures throw
/// sckl::Error with code kIoTransient (the store retries these); the
/// deterministic fault site `store_write` injects here, and the crash point
/// `store_write_pre_fsync` kills the process between write and fsync.
void write_kle_file(const std::string& path, const StoredKleResult& stored);

/// fsyncs the directory `dir` so a just-renamed entry in it is durable (on
/// POSIX, rename durability requires syncing the containing directory).
/// Failures are swallowed: by this point the artifact is already published
/// and readable, only its crash-durability is weakened.
void fsync_directory(const std::string& dir);

/// Reads and validates an artifact file. I/O failures throw with code
/// kIoTransient (retryable); decode/validation failures with code
/// kCorruptArtifact (the store quarantines these). The deterministic fault
/// site `store_read` injects a transient failure here.
StoredKleResult read_kle_file(const std::string& path);

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of a byte range.
std::uint32_t crc32(const std::uint8_t* data, std::size_t size);

}  // namespace sckl::store
