#include "store/recovery.h"

#include <chrono>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "robust/fault_injection.h"
#include "store/file_lock.h"
#include "store/key_hash.h"
#include "store/kle_io.h"

namespace sckl::store {

namespace fs = std::filesystem;

namespace {

bool name_ends_with(const std::string& name, const char* suffix) {
  const std::string_view s(suffix);
  return name.size() >= s.size() &&
         name.compare(name.size() - s.size(), s.size(), s) == 0;
}

/// Moves a broken artifact to <name>.bad, falling back to deletion (losing
/// evidence beats leaving corruption under a servable name).
bool quarantine_file(const fs::path& path) {
  std::error_code ec;
  fs::rename(path, fs::path(path.string() + ".bad"), ec);
  if (!ec) return true;
  fs::remove(path, ec);
  return !ec;
}

}  // namespace

bool is_artifact_file(const fs::path& path) {
  return path.extension() == ".sckl";
}

bool is_quarantine_file(const fs::path& path) {
  return name_ends_with(path.filename().string(), ".sckl.bad");
}

bool is_tmp_file(const fs::path& path) {
  const std::string name = path.filename().string();
  const std::size_t sckl = name.find(".sckl.");
  return sckl != std::string::npos && name.find(".tmp", sckl) != std::string::npos &&
         !name_ends_with(name, ".bad") && !name_ends_with(name, ".lock");
}

bool is_lock_file(const fs::path& path) {
  return path.extension() == ".lock";
}

double file_age_seconds(const fs::path& path) {
  std::error_code ec;
  const fs::file_time_type written = fs::last_write_time(path, ec);
  if (ec) return 0.0;
  const auto age = fs::file_time_type::clock::now() - written;
  return std::chrono::duration<double>(age).count();
}

FsckResult fsck(const fs::path& root, const FsckOptions& options) {
  obs::Span span("store.fsck");
  obs::counter("sckl.store.fsck.runs").add(1);
  std::error_code ec;
  require(fs::is_directory(root, ec) && !ec,
          "fsck: store root '" + root.string() + "' is not a directory");

  // Exclusive store lock: no publication or key-lock acquisition can be in
  // flight while we classify, so "orphaned" and "stale" verdicts are safe.
  const fs::path store_lock_path = root / kStoreLockName;
  const FileLock guard = FileLock::acquire(store_lock_path, FileLock::Mode::kExclusive);

  FsckResult result;
  FsckStats& stats = result.stats;
  robust::HealthReport& report = result.report;
  const robust::Severity fixed =
      options.repair ? robust::Severity::kInfo : robust::Severity::kWarning;

  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(root, ec)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }

  for (const fs::path& path : files) {
    const std::string name = path.filename().string();
    ++stats.scanned;

    if (is_tmp_file(path)) {
      ++stats.orphaned_tmp;
      const double age = file_age_seconds(path);
      const bool reap = options.repair && age >= options.tmp_max_age_seconds;
      report.add(fixed, "orphaned_tmp",
                 name + ": interrupted publication" +
                     (reap ? ", reaped" : ", kept (younger than max age)"));
      if (reap) {
        robust::crash_point(robust::FaultSite::kStoreGcMidSweep);
        std::error_code rm;
        if (fs::remove(path, rm) && !rm) ++stats.repaired;
      }
      continue;
    }

    if (is_lock_file(path)) {
      if (path == store_lock_path) continue;  // held by this very pass
      if (lock_is_held(path)) {
        ++stats.live_locks;
        report.add(robust::Severity::kInfo, "live_lock",
                   name + ": currently held, left alone");
        continue;
      }
      ++stats.stale_locks;
      report.add(fixed, "stale_lock",
                 name + ": no living holder" +
                     (options.repair ? ", removed" : ""));
      if (options.repair) {
        std::error_code rm;
        if (fs::remove(path, rm) && !rm) ++stats.repaired;
      }
      continue;
    }

    if (is_quarantine_file(path)) {
      ++stats.quarantined;
      const bool purge = options.repair && options.purge_quarantine;
      report.add(purge ? robust::Severity::kInfo : robust::Severity::kWarning,
                 "quarantine_evidence",
                 name + (purge ? ": purged"
                               : ": awaiting post-mortem (purge via gc or "
                                 "--purge-quarantine)"));
      if (purge) {
        std::error_code rm;
        if (fs::remove(path, rm) && !rm) ++stats.repaired;
      }
      continue;
    }

    if (!is_artifact_file(path)) continue;  // foreign file: not ours to judge

    try {
      const StoredKleResult loaded = read_kle_file(path.string());
      if (key_string(artifact_key(loaded.config())) == path.stem().string()) {
        ++stats.healthy;
        continue;
      }
      ++stats.mismatched;
      report.add(options.repair ? robust::Severity::kWarning
                                : robust::Severity::kError,
                 "key_mismatch",
                 name + ": content hashes to a different key (" +
                     std::string(to_string(ErrorCode::kCorruptArtifact)) +
                     ")" + (options.repair ? ", quarantined" : ""));
      if (options.repair) {
        robust::crash_point(robust::FaultSite::kStoreGcMidSweep);
        if (quarantine_file(path)) ++stats.repaired;
      }
    } catch (const Error& e) {
      if (e.code() == ErrorCode::kIoTransient) {
        // A read that fails transiently proves nothing about the file;
        // repairing on it would let a disk hiccup destroy healthy artifacts.
        ++stats.unreadable;
        report.add(robust::Severity::kError, "unreadable",
                   name + ": " + std::string(to_string(e.code())) +
                       ", left untouched");
        continue;
      }
      ++stats.corrupt;
      report.add(options.repair ? robust::Severity::kWarning
                                : robust::Severity::kError,
                 "corrupt_artifact",
                 name + ": " + std::string(to_string(e.code())) +
                     (options.repair ? ", quarantined" : ""));
      if (options.repair && quarantine_file(path)) ++stats.repaired;
    }
  }

  report.metric("scanned", static_cast<double>(stats.scanned));
  report.metric("healthy", static_cast<double>(stats.healthy));
  report.metric("repaired", static_cast<double>(stats.repaired));
  if (stats.clean())
    report.add(robust::Severity::kInfo, "clean",
               "store contains only healthy artifacts");
  return result;
}

}  // namespace sckl::store
