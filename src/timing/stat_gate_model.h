// Rank-one quadratic statistical gate model (Li et al. [22]).
//
// The paper models gate delay and output slew as functions of the input
// slew and four normalized statistical parameters p = (L, W, Vt, tox),
// using rank-one quadratic functions: the nominal NLDM value is scaled by
//   factor(p) = 1 + b^T p + gamma (v^T p)^2
// where b captures first-order sensitivities (in fraction-per-sigma) and
// the rank-one quadratic term gamma (v^T p)^2 the dominant curvature. The
// factor is clamped away from zero so extreme (>5 sigma) samples cannot
// produce non-physical negative delays.
#pragma once

#include <array>
#include <cstddef>

namespace sckl::timing {

/// Index order of the four statistical parameters everywhere in the
/// timing/SSTA layers.
enum StatParameter : std::size_t {
  kParamL = 0,    // effective channel length
  kParamW = 1,    // device width
  kParamVt = 2,   // threshold voltage
  kParamTox = 3,  // oxide thickness
};
inline constexpr std::size_t kNumStatParameters = 4;

/// Human-readable parameter names ("L", "W", "Vt", "tox").
const char* stat_parameter_name(std::size_t parameter);

/// Normalized parameter values of one gate for one Monte Carlo sample.
using StatVector = std::array<double, kNumStatParameters>;

/// The rank-one quadratic sensitivity of one timing quantity.
struct RankOneQuadratic {
  StatVector linear{};     // b: fraction of nominal per sigma
  StatVector direction{};  // v: rank-one quadratic direction
  double quadratic = 0.0;  // gamma

  /// factor(p), clamped to [min_factor, +inf).
  double factor(const StatVector& p, double min_factor = 0.2) const;
};

}  // namespace sckl::timing
