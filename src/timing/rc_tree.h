// RC interconnect trees: Elmore delay and PERI/Bakoglu slew.
//
// Wire delay uses the Elmore metric [19] (first moment of the impulse
// response): delay(sink) = sum over tree nodes k of R(common path) * C_k,
// computed with the classic two-pass algorithm (downstream capacitance,
// then delay accumulation). Wire slew follows PERI [20] with the Bakoglu
// step-response metric [21]: step_slew = ln(9) * elmore, and the ramp
// response composes as out^2 = in^2 + step^2.
//
// Units everywhere in the timing layer: ps, kOhm, fF (kOhm x fF = ps).
#pragma once

#include <cstddef>
#include <vector>

namespace sckl::timing {

/// Rooted RC tree. Node 0 is the root (driver output); every other node
/// hangs off its parent through a resistance.
class RcTree {
 public:
  RcTree();

  /// Adds a node connected to `parent` through `resistance`, carrying
  /// `capacitance` to ground; returns the node id.
  std::size_t add_node(std::size_t parent, double resistance,
                       double capacitance);

  /// Adds extra grounded capacitance (e.g. a sink pin cap) at a node.
  void add_capacitance(std::size_t node, double capacitance);

  std::size_t num_nodes() const { return parent_.size(); }

  /// Total capacitance of the tree — the driver's load.
  double total_capacitance() const;

  /// Elmore delays from the root to every node (root entry is 0).
  std::vector<double> elmore_delays() const;

  /// Elmore delay to one node.
  double elmore_delay_to(std::size_t node) const;

 private:
  std::vector<std::size_t> parent_;
  std::vector<double> resistance_;
  std::vector<double> capacitance_;
};

/// Bakoglu step-response slew of a node with the given Elmore delay.
double bakoglu_step_slew(double elmore_delay);

/// PERI slew propagation: ramp input of slew `input_slew` through a stage
/// whose step response slew is `step_slew`.
double peri_slew(double input_slew, double step_slew);

/// Convenience: output slew at a wire sink = PERI(input, Bakoglu(elmore)).
double wire_output_slew(double input_slew, double elmore_delay);

}  // namespace sckl::timing
