#include "timing/cell_library.h"

#include <cmath>

#include "common/error.h"

namespace sckl::timing {
namespace {

using circuit::CellFunction;

// Characterization grids. The upper points (slews of several ns, loads of
// hundreds of fF) cover the unbuffered long nets of the placed benchmarks;
// inside the grid the bilinear surface of the monotone drive model stays
// well behaved, whereas far corner extrapolation of a concave surface can
// go negative.
const std::vector<double>& slew_axis() {
  static const std::vector<double> axis = {5.0,   20.0,   60.0,  150.0,
                                           400.0, 1200.0, 4000.0, 12000.0};
  return axis;
}

const std::vector<double>& load_axis() {
  static const std::vector<double> axis = {0.5,  2.0,   8.0,   25.0,
                                           80.0, 250.0, 800.0, 2500.0};
  return axis;
}

// First-order drive model backing the generated tables:
// t = t0 + r_drive * load + k_slew * slew + k_mix * sqrt(slew * load).
NldmTable make_delay_table(double t0, double r_drive, double k_slew) {
  std::vector<std::vector<double>> values;
  for (double s : slew_axis()) {
    std::vector<double> row;
    for (double c : load_axis())
      row.push_back(t0 + r_drive * c + k_slew * s +
                    0.05 * std::sqrt(s * c));
    values.push_back(std::move(row));
  }
  return NldmTable(slew_axis(), load_axis(), std::move(values));
}

// Output slew: dominated by the RC at the output, with a weak feed-through
// of the input slew (ramp composition).
NldmTable make_slew_table(double s0, double r_drive) {
  std::vector<std::vector<double>> values;
  for (double s : slew_axis()) {
    std::vector<double> row;
    for (double c : load_axis()) {
      const double step = std::log(9.0) * 0.7 * r_drive * c;
      row.push_back(std::sqrt(s0 * s0 + step * step + 0.06 * s * s));
    }
    values.push_back(std::move(row));
  }
  return NldmTable(slew_axis(), load_axis(), std::move(values));
}

// Deterministic per-cell variation of the sensitivity magnitudes so the
// library is not artificially uniform (hash of the cell name).
double jitter(const std::string& name, std::size_t salt) {
  std::size_t h = std::hash<std::string>{}(name) ^ (salt * 0x9E3779B9u);
  h ^= h >> 16;
  return 0.8 + 0.4 * static_cast<double>(h % 1000) / 999.0;  // [0.8, 1.2]
}

RankOneQuadratic make_delay_sensitivity(const std::string& name) {
  RankOneQuadratic s;
  // Per-sigma fractional impact, 90nm-plausible: channel length and Vt
  // dominate; wider devices are faster (negative W coefficient).
  s.linear = {0.055 * jitter(name, 1), -0.025 * jitter(name, 2),
              0.045 * jitter(name, 3), 0.020 * jitter(name, 4)};
  s.direction = {0.70, -0.10, 0.62, 0.20};
  s.quadratic = 0.008 * jitter(name, 5);
  return s;
}

RankOneQuadratic make_slew_sensitivity(const std::string& name) {
  RankOneQuadratic s = make_delay_sensitivity(name);
  for (auto& b : s.linear) b *= 0.8;
  s.quadratic *= 0.8;
  return s;
}

TimingCell make_cell(const std::string& name, CellFunction function,
                     std::size_t arity, double t0, double r_drive,
                     double input_cap) {
  TimingCell cell;
  cell.name = name;
  cell.function = function;
  cell.arity = arity;
  cell.input_cap = input_cap;
  cell.delay = make_delay_table(t0, r_drive, 0.18);
  cell.output_slew = make_slew_table(8.0 + 0.2 * t0, r_drive);
  cell.delay_sensitivity = make_delay_sensitivity(name);
  cell.slew_sensitivity = make_slew_sensitivity(name);
  return cell;
}

}  // namespace

void CellLibrary::add_cell(TimingCell cell) {
  for (const auto& existing : cells_)
    require(!(existing.function == cell.function &&
              existing.arity == cell.arity),
            "CellLibrary::add_cell: duplicate cell " + cell.name);
  cells_.push_back(std::move(cell));
}

const TimingCell& CellLibrary::cell_for(circuit::CellFunction function,
                                        std::size_t arity) const {
  const TimingCell* best = nullptr;
  for (const auto& cell : cells_) {
    if (cell.function != function) continue;
    if (cell.arity == arity) return cell;
    // Track the largest characterized arity as the clamp target.
    if (best == nullptr || cell.arity > best->arity) best = &cell;
  }
  require(best != nullptr,
          std::string("CellLibrary::cell_for: no cell for function ") +
              circuit::cell_function_name(function));
  return *best;
}

CellLibrary CellLibrary::default_90nm() {
  CellLibrary library;
  library.add_cell(make_cell("BUF", CellFunction::kBuf, 1, 22.0, 1.8, 2.0));
  library.add_cell(make_cell("INV", CellFunction::kInv, 1, 12.0, 2.2, 1.8));
  struct MultiInput {
    CellFunction function;
    const char* base;
    double t0;
    double r_drive;
    double input_cap;
  };
  const MultiInput families[] = {
      {CellFunction::kAnd, "AND", 24.0, 2.6, 2.1},
      {CellFunction::kNand, "NAND", 16.0, 2.8, 2.2},
      {CellFunction::kOr, "OR", 26.0, 2.9, 2.1},
      {CellFunction::kNor, "NOR", 18.0, 3.2, 2.3},
      {CellFunction::kXor, "XOR", 28.0, 3.5, 3.0},
      {CellFunction::kXnor, "XNOR", 30.0, 3.5, 3.0},
  };
  for (const auto& family : families) {
    for (std::size_t arity = 2; arity <= 4; ++arity) {
      const double extra = static_cast<double>(arity - 2);
      library.add_cell(make_cell(
          family.base + std::to_string(arity), family.function, arity,
          family.t0 + 4.0 * extra, family.r_drive + 0.4 * extra,
          family.input_cap + 0.3 * extra));
    }
  }
  library.add_cell(make_cell("DFF", CellFunction::kDff, 1, 45.0, 2.5, 2.0));
  return library;
}

}  // namespace sckl::timing
