// Cell-library text serialization (a Liberty-flavored format).
//
// Real flows characterize libraries once and ship them as text; this module
// round-trips a CellLibrary through a compact, diff-friendly format:
//
//   library "sckl_90nm" {
//     technology { wire_res 0.2  wire_cap 200 ... }
//     cell "NAND2" function NAND arity 2 input_cap 2.2 {
//       slew_axis 5 20 60 150 400
//       load_axis 0.5 2 8 25 80
//       delay { <5 rows x 5 cols of values> }
//       output_slew { ... }
//       delay_sens linear a b c d direction a b c d quadratic g
//       slew_sens ...
//     }
//   }
//
// The parser is whitespace-token based and reports the offending token on
// malformed input.
#pragma once

#include <iosfwd>
#include <string>

#include "timing/cell_library.h"

namespace sckl::timing {

/// Serializes a library (cells + technology) to text.
std::string write_library(const CellLibrary& library,
                          const std::string& name = "sckl_90nm");

/// Parses a library from text produced by write_library (round-trippable).
CellLibrary parse_library(const std::string& text);

}  // namespace sckl::timing
