#include "timing/rc_tree.h"

#include <cmath>

#include "common/error.h"

namespace sckl::timing {

RcTree::RcTree() {
  // Root: no parent resistance; parent index is itself.
  parent_.push_back(0);
  resistance_.push_back(0.0);
  capacitance_.push_back(0.0);
}

std::size_t RcTree::add_node(std::size_t parent, double resistance,
                             double capacitance) {
  require(parent < parent_.size(), "RcTree::add_node: bad parent");
  require(resistance >= 0.0 && capacitance >= 0.0,
          "RcTree::add_node: negative R or C");
  parent_.push_back(parent);
  resistance_.push_back(resistance);
  capacitance_.push_back(capacitance);
  return parent_.size() - 1;
}

void RcTree::add_capacitance(std::size_t node, double capacitance) {
  require(node < parent_.size(), "RcTree::add_capacitance: bad node");
  require(capacitance >= 0.0, "RcTree::add_capacitance: negative C");
  capacitance_[node] += capacitance;
}

double RcTree::total_capacitance() const {
  double total = 0.0;
  for (double c : capacitance_) total += c;
  return total;
}

std::vector<double> RcTree::elmore_delays() const {
  const std::size_t n = parent_.size();
  // Children are always appended after their parent, so index order is a
  // valid topological order: reverse for downstream caps, forward for
  // delay accumulation.
  std::vector<double> downstream = capacitance_;
  for (std::size_t i = n; i-- > 1;) downstream[parent_[i]] += downstream[i];
  std::vector<double> delay(n, 0.0);
  for (std::size_t i = 1; i < n; ++i)
    delay[i] = delay[parent_[i]] + resistance_[i] * downstream[i];
  return delay;
}

double RcTree::elmore_delay_to(std::size_t node) const {
  require(node < parent_.size(), "RcTree::elmore_delay_to: bad node");
  return elmore_delays()[node];
}

double bakoglu_step_slew(double elmore_delay) {
  // 10-90% rise time of a single-pole response: t = ln(9) * tau.
  return std::log(9.0) * elmore_delay;
}

double peri_slew(double input_slew, double step_slew) {
  return std::sqrt(input_slew * input_slew + step_slew * step_slew);
}

double wire_output_slew(double input_slew, double elmore_delay) {
  return peri_slew(input_slew, bakoglu_step_slew(elmore_delay));
}

}  // namespace sckl::timing
