// Critical-path extraction and reporting.
//
// Production STA reports the worst path, not just the endpoint arrival.
// Given a traced STA run, walk back from the worst endpoint through each
// gate's worst input arc to the launching startpoint, and format the result
// as a classic timing report (gate, cell, arrival, slew, incremental
// delay). Used by the ssta_flow example and by tests that pin down the
// engine's max-propagation semantics.
#pragma once

#include <string>
#include <vector>

#include "timing/sta.h"

namespace sckl::timing {

/// One traversal step of a critical path, startpoint first.
struct CriticalPathStep {
  std::size_t gate = 0;     // netlist gate index
  double arrival = 0.0;     // arrival at the gate's output (ps)
  double slew = 0.0;        // slew at the gate's output (ps)
  double increment = 0.0;   // delay added by this step (gate + wire in)
};

/// A complete worst path.
struct CriticalPath {
  std::vector<CriticalPathStep> steps;  // startpoint ... last gate
  std::size_t endpoint = 0;             // endpoint gate index
  double delay = 0.0;                   // endpoint arrival
};

/// Extracts the worst path of a traced run. `result`/`trace` must come from
/// the same StaEngine::run call.
CriticalPath extract_critical_path(const StaEngine& engine,
                                   const StaResult& result,
                                   const StaTrace& trace);

/// Formats a path as a human-readable timing report.
std::string format_critical_path(const circuit::Netlist& netlist,
                                 const CriticalPath& path);

}  // namespace sckl::timing
