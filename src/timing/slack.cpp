#include "timing/slack.h"

#include <algorithm>
#include <limits>

#include "common/error.h"
#include "timing/rc_tree.h"

namespace sckl::timing {

SlackReport compute_slacks(const StaEngine& engine, const StaTrace& trace,
                           double required_time) {
  const circuit::Netlist& netlist = engine.netlist();
  const std::size_t n = netlist.num_gates_total();
  require(trace.arrival.size() == n, "compute_slacks: trace/netlist mismatch");

  SlackReport report;
  report.required_time = required_time;
  report.required.assign(n, std::numeric_limits<double>::infinity());

  const auto& order = engine.levelization().topological_order;
  const Technology& technology = engine.technology();

  // Seed endpoints: the required time applies at the endpoint input pin, so
  // the driving gate's output must satisfy required_time - wire.
  for (std::size_t endpoint : engine.endpoints()) {
    const circuit::Gate& gate = netlist.gate(endpoint);
    const std::size_t u = gate.fanin[0];
    report.required[u] = std::min(report.required[u],
                                  required_time -
                                      engine.edge_elmore(endpoint, 0));
  }

  // Reverse topological pass over combinational arcs.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const std::size_t v = *it;
    const circuit::Gate& gate = netlist.gate(v);
    if (gate.function == circuit::CellFunction::kInput ||
        gate.function == circuit::CellFunction::kOutput ||
        gate.function == circuit::CellFunction::kDff)
      continue;  // startpoints/endpoints seeded above; pads have no arcs
    if (report.required[v] ==
        std::numeric_limits<double>::infinity())
      continue;  // drives nothing constrained
    const TimingCell& cell = *engine.cell(v);
    for (std::size_t k = 0; k < gate.fanin.size(); ++k) {
      const std::size_t u = gate.fanin[k];
      const double wire = engine.edge_elmore(v, k);
      const double in_slew = std::max(
          technology.min_slew, wire_output_slew(trace.slew[u], wire));
      const double arc_delay =
          cell.delay.lookup(in_slew, engine.load_capacitance(v));
      report.required[u] = std::min(
          report.required[u], report.required[v] - arc_delay - wire);
    }
  }

  report.slack.assign(n, std::numeric_limits<double>::infinity());
  report.worst_slack = std::numeric_limits<double>::infinity();
  for (std::size_t g = 0; g < n; ++g) {
    if (report.required[g] == std::numeric_limits<double>::infinity())
      continue;
    report.slack[g] = report.required[g] - trace.arrival[g];
    report.worst_slack = std::min(report.worst_slack, report.slack[g]);
    if (report.slack[g] < 0.0) ++report.num_negative;
  }
  return report;
}

}  // namespace sckl::timing
