// Synthetic 90nm-like standard-cell library.
//
// The paper characterizes its gates from the Cadence 90nm Generic PDK; we
// synthesize an equivalent library procedurally: NLDM delay/slew tables on
// a 5x5 (input slew x output load) grid generated from a first-order drive
// model (intrinsic delay + drive resistance x load + slew feed-through),
// plus per-cell rank-one quadratic sensitivities to the four statistical
// parameters. Magnitudes are 90nm-plausible (gate delays tens of ps, sigma
// impact of a few percent per parameter); see DESIGN.md substitutions.
#pragma once

#include <string>
#include <vector>

#include "circuit/netlist.h"
#include "timing/nldm.h"
#include "timing/stat_gate_model.h"

namespace sckl::timing {

/// One characterized cell (function + arity).
struct TimingCell {
  std::string name;  // e.g. "NAND2"
  circuit::CellFunction function = circuit::CellFunction::kBuf;
  std::size_t arity = 1;
  double input_cap = 2.0;  // fF per input pin
  NldmTable delay;         // ps
  NldmTable output_slew;   // ps
  RankOneQuadratic delay_sensitivity;
  RankOneQuadratic slew_sensitivity;
};

/// Interconnect topology used to derive per-sink wire delays.
enum class WireModel {
  /// Independent star segments per sink, loads from the HPWL wire-load
  /// model — exactly the paper's setup (Sec. 5.1).
  kStarHpwl,
  /// Shared-trunk RC tree per net (driver -> net center -> sinks), Elmore
  /// through the common trunk; loads from the tree's total capacitance.
  kSharedTrunkTree,
};

/// Interconnect and environment constants of the technology.
struct Technology {
  double wire_resistance_per_unit = 0.2;   // kOhm per die unit (~1 mm)
  double wire_capacitance_per_unit = 200;  // fF per die unit
  double primary_input_slew = 40.0;        // ps
  double clock_slew = 30.0;                // ps, drives DFF clk->Q lookup
  double primary_output_cap = 5.0;         // fF pad load
  double min_slew = 2.0;                   // ps floor
  WireModel wire_model = WireModel::kStarHpwl;
};

/// Cell collection with (function, arity) lookup.
class CellLibrary {
 public:
  /// Registers a cell; (function, arity) pairs must be unique.
  void add_cell(TimingCell cell);

  /// The cell for a gate's function and fanin count. Arity clamps to the
  /// largest characterized arity of that function (ISCAS gates can have
  /// wide fanin). Throws for functions with no cells (INPUT/OUTPUT).
  const TimingCell& cell_for(circuit::CellFunction function,
                             std::size_t arity) const;

  const std::vector<TimingCell>& cells() const { return cells_; }
  const Technology& technology() const { return technology_; }
  void set_technology(const Technology& tech) { technology_ = tech; }

  /// The default synthetic 90nm-like library: BUF/INV, 2-4 input
  /// AND/NAND/OR/NOR/XOR/XNOR, and DFF.
  static CellLibrary default_90nm();

 private:
  std::vector<TimingCell> cells_;
  Technology technology_;
};

}  // namespace sckl::timing
