// NLDM-style two-dimensional timing tables.
//
// Gate delay and output slew are table lookups over (input slew, output
// load), the standard non-linear delay model of Liberty-characterized
// libraries. Lookups bilinearly interpolate inside the characterized grid
// and linearly extrapolate at the edges (clamped axes), matching common STA
// practice.
#pragma once

#include <vector>

namespace sckl::timing {

/// Monotone axis + value grid; values[i][j] corresponds to
/// (slew_axis[i], load_axis[j]).
class NldmTable {
 public:
  NldmTable() = default;

  /// Builds a table. Axes must be strictly increasing and the value grid
  /// must be slew_axis.size() x load_axis.size().
  NldmTable(std::vector<double> slew_axis, std::vector<double> load_axis,
            std::vector<std::vector<double>> values);

  /// Bilinear interpolation with edge extrapolation.
  double lookup(double input_slew, double load) const;

  const std::vector<double>& slew_axis() const { return slew_axis_; }
  const std::vector<double>& load_axis() const { return load_axis_; }

 private:
  std::vector<double> slew_axis_;
  std::vector<double> load_axis_;
  std::vector<std::vector<double>> values_;
};

}  // namespace sckl::timing
