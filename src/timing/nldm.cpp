#include "timing/nldm.h"

#include <algorithm>

#include "common/error.h"

namespace sckl::timing {
namespace {

// Index of the axis segment containing (or nearest to) x, and the
// interpolation parameter within it (can exceed [0,1] for extrapolation).
std::pair<std::size_t, double> locate(const std::vector<double>& axis,
                                      double x) {
  const std::size_t n = axis.size();
  if (n == 1) return {0, 0.0};
  std::size_t hi = 1;
  while (hi + 1 < n && axis[hi] < x) ++hi;
  const std::size_t lo = hi - 1;
  const double t = (x - axis[lo]) / (axis[hi] - axis[lo]);
  return {lo, t};
}

}  // namespace

NldmTable::NldmTable(std::vector<double> slew_axis,
                     std::vector<double> load_axis,
                     std::vector<std::vector<double>> values)
    : slew_axis_(std::move(slew_axis)),
      load_axis_(std::move(load_axis)),
      values_(std::move(values)) {
  require(!slew_axis_.empty() && !load_axis_.empty(),
          "NldmTable: empty axis");
  for (std::size_t i = 1; i < slew_axis_.size(); ++i)
    require(slew_axis_[i] > slew_axis_[i - 1],
            "NldmTable: slew axis not increasing");
  for (std::size_t i = 1; i < load_axis_.size(); ++i)
    require(load_axis_[i] > load_axis_[i - 1],
            "NldmTable: load axis not increasing");
  require(values_.size() == slew_axis_.size(), "NldmTable: bad row count");
  for (const auto& row : values_)
    require(row.size() == load_axis_.size(), "NldmTable: bad column count");
}

double NldmTable::lookup(double input_slew, double load) const {
  require(!values_.empty(), "NldmTable::lookup: empty table");
  const auto [i, ti] = locate(slew_axis_, input_slew);
  const auto [j, tj] = locate(load_axis_, load);
  if (slew_axis_.size() == 1 && load_axis_.size() == 1)
    return values_[0][0];
  if (slew_axis_.size() == 1) {
    return values_[0][j] * (1.0 - tj) + values_[0][j + 1] * tj;
  }
  if (load_axis_.size() == 1) {
    return values_[i][0] * (1.0 - ti) + values_[i + 1][0] * ti;
  }
  const double v00 = values_[i][j];
  const double v01 = values_[i][j + 1];
  const double v10 = values_[i + 1][j];
  const double v11 = values_[i + 1][j + 1];
  const double low = v00 * (1.0 - tj) + v01 * tj;
  const double high = v10 * (1.0 - tj) + v11 * tj;
  return low * (1.0 - ti) + high * ti;
}

}  // namespace sckl::timing
