#include "timing/library_io.h"

#include <sstream>
#include <vector>

#include "common/error.h"

namespace sckl::timing {
namespace {

using circuit::CellFunction;

CellFunction function_from_name(const std::string& name) {
  for (CellFunction f :
       {CellFunction::kBuf, CellFunction::kInv, CellFunction::kAnd,
        CellFunction::kNand, CellFunction::kOr, CellFunction::kNor,
        CellFunction::kXor, CellFunction::kXnor, CellFunction::kDff}) {
    if (name == circuit::cell_function_name(f)) return f;
  }
  require(false, "parse_library: unknown cell function '" + name + "'");
  return CellFunction::kBuf;  // unreachable
}

void write_axis(std::ostringstream& out, const char* name,
                const std::vector<double>& axis) {
  out << "    " << name;
  for (double v : axis) out << ' ' << v;
  out << '\n';
}

void write_table_values(std::ostringstream& out, const char* name,
                        const NldmTable& table) {
  out << "    " << name << " {\n";
  for (double s : table.slew_axis()) {
    out << "     ";
    for (double c : table.load_axis()) out << ' ' << table.lookup(s, c);
    out << '\n';
  }
  out << "    }\n";
}

void write_sensitivity(std::ostringstream& out, const char* name,
                       const RankOneQuadratic& s) {
  out << "    " << name << " linear";
  for (double v : s.linear) out << ' ' << v;
  out << " direction";
  for (double v : s.direction) out << ' ' << v;
  out << " quadratic " << s.quadratic << '\n';
}

// Token stream with one-token lookahead and typed extraction.
class Tokens {
 public:
  explicit Tokens(const std::string& text) {
    std::istringstream in(text);
    std::string token;
    while (in >> token) tokens_.push_back(token);
  }

  bool done() const { return next_ >= tokens_.size(); }

  const std::string& peek() const {
    require(!done(), "parse_library: unexpected end of input");
    return tokens_[next_];
  }

  std::string take() {
    require(!done(), "parse_library: unexpected end of input");
    return tokens_[next_++];
  }

  void expect(const std::string& token) {
    const std::string got = take();
    require(got == token, "parse_library: expected '" + token + "', got '" +
                              got + "'");
  }

  double number() {
    const std::string token = take();
    try {
      std::size_t used = 0;
      const double value = std::stod(token, &used);
      require(used == token.size(), "parse_library: bad number '" + token +
                                        "'");
      return value;
    } catch (const std::exception&) {
      require(false, "parse_library: bad number '" + token + "'");
      return 0.0;
    }
  }

  std::string quoted() {
    std::string token = take();
    require(token.size() >= 2 && token.front() == '"' && token.back() == '"',
            "parse_library: expected quoted string, got '" + token + "'");
    return token.substr(1, token.size() - 2);
  }

 private:
  std::vector<std::string> tokens_;
  std::size_t next_ = 0;
};

std::vector<double> read_numbers_until(Tokens& tokens,
                                       const std::string& sentinel) {
  std::vector<double> values;
  while (tokens.peek() != sentinel) values.push_back(tokens.number());
  return values;
}

NldmTable read_table(Tokens& tokens, const std::vector<double>& slew_axis,
                     const std::vector<double>& load_axis) {
  tokens.expect("{");
  std::vector<std::vector<double>> rows;
  for (std::size_t r = 0; r < slew_axis.size(); ++r) {
    std::vector<double> row;
    for (std::size_t c = 0; c < load_axis.size(); ++c)
      row.push_back(tokens.number());
    rows.push_back(std::move(row));
  }
  tokens.expect("}");
  return NldmTable(slew_axis, load_axis, std::move(rows));
}

RankOneQuadratic read_sensitivity(Tokens& tokens) {
  RankOneQuadratic s;
  tokens.expect("linear");
  for (auto& v : s.linear) v = tokens.number();
  tokens.expect("direction");
  for (auto& v : s.direction) v = tokens.number();
  tokens.expect("quadratic");
  s.quadratic = tokens.number();
  return s;
}

}  // namespace

std::string write_library(const CellLibrary& library,
                          const std::string& name) {
  std::ostringstream out;
  out.precision(17);
  const Technology& tech = library.technology();
  out << "library \"" << name << "\" {\n";
  out << "  technology { wire_res " << tech.wire_resistance_per_unit
      << " wire_cap " << tech.wire_capacitance_per_unit << " input_slew "
      << tech.primary_input_slew << " clock_slew " << tech.clock_slew
      << " output_cap " << tech.primary_output_cap << " min_slew "
      << tech.min_slew << " wire_model "
      << (tech.wire_model == WireModel::kSharedTrunkTree ? 1 : 0) << " }\n";
  for (const TimingCell& cell : library.cells()) {
    out << "  cell \"" << cell.name << "\" function "
        << circuit::cell_function_name(cell.function) << " arity "
        << cell.arity << " input_cap " << cell.input_cap << " {\n";
    std::ostringstream body;
    body.precision(17);
    write_axis(body, "slew_axis", cell.delay.slew_axis());
    write_axis(body, "load_axis", cell.delay.load_axis());
    write_table_values(body, "delay", cell.delay);
    write_table_values(body, "output_slew", cell.output_slew);
    write_sensitivity(body, "delay_sens", cell.delay_sensitivity);
    write_sensitivity(body, "slew_sens", cell.slew_sensitivity);
    out << body.str() << "  }\n";
  }
  out << "}\n";
  return out.str();
}

CellLibrary parse_library(const std::string& text) {
  Tokens tokens(text);
  CellLibrary library;
  tokens.expect("library");
  tokens.quoted();  // library name (informational)
  tokens.expect("{");

  tokens.expect("technology");
  tokens.expect("{");
  Technology tech;
  while (tokens.peek() != "}") {
    const std::string key = tokens.take();
    const double value = tokens.number();
    if (key == "wire_res") {
      tech.wire_resistance_per_unit = value;
    } else if (key == "wire_cap") {
      tech.wire_capacitance_per_unit = value;
    } else if (key == "input_slew") {
      tech.primary_input_slew = value;
    } else if (key == "clock_slew") {
      tech.clock_slew = value;
    } else if (key == "output_cap") {
      tech.primary_output_cap = value;
    } else if (key == "min_slew") {
      tech.min_slew = value;
    } else if (key == "wire_model") {
      tech.wire_model = value != 0.0 ? WireModel::kSharedTrunkTree
                                     : WireModel::kStarHpwl;
    } else {
      require(false, "parse_library: unknown technology key '" + key + "'");
    }
  }
  tokens.expect("}");
  library.set_technology(tech);

  while (tokens.peek() != "}") {
    tokens.expect("cell");
    TimingCell cell;
    cell.name = tokens.quoted();
    tokens.expect("function");
    cell.function = function_from_name(tokens.take());
    tokens.expect("arity");
    cell.arity = static_cast<std::size_t>(tokens.number());
    tokens.expect("input_cap");
    cell.input_cap = tokens.number();
    tokens.expect("{");
    tokens.expect("slew_axis");
    const std::vector<double> slew_axis =
        read_numbers_until(tokens, "load_axis");
    tokens.expect("load_axis");
    const std::vector<double> load_axis = read_numbers_until(tokens, "delay");
    tokens.expect("delay");
    cell.delay = read_table(tokens, slew_axis, load_axis);
    tokens.expect("output_slew");
    cell.output_slew = read_table(tokens, slew_axis, load_axis);
    tokens.expect("delay_sens");
    cell.delay_sensitivity = read_sensitivity(tokens);
    tokens.expect("slew_sens");
    cell.slew_sensitivity = read_sensitivity(tokens);
    tokens.expect("}");
    library.add_cell(std::move(cell));
  }
  tokens.expect("}");
  return library;
}

}  // namespace sckl::timing
