// Block-based static timing analysis engine.
//
// This is the "core timer inside the Monte Carlo loops" of Sec. 5.1:
//  - Elmore wire delay [19] on star RC nets derived from the placement,
//  - PERI wire slew [20] with the Bakoglu step metric [21],
//  - NLDM gate delay / output slew scaled by rank-one quadratic functions
//    [22] of the four statistical parameters (L, W, Vt, tox),
//  - forward propagation of arrival times and slews in topological order,
//    max at merges; DFFs launch at their clk->Q delay and capture at their
//    D pin; worst delay is the max over all endpoints (POs + DFF D pins).
// All structure (levelization, cells, wire parasitics, edge Elmore delays)
// is precomputed at construction; run() is then allocation-light and called
// once per Monte Carlo sample.
#pragma once

#include <array>
#include <vector>

#include "circuit/levelize.h"
#include "placer/recursive_placer.h"
#include "timing/cell_library.h"

namespace sckl::timing {

/// Per-sample statistical parameter inputs: for each of the 4 parameters, a
/// pointer to N_physical_gates normalized values (physical_gates() order),
/// or nullptr for nominal (all zeros).
using ParameterView = std::array<const double*, kNumStatParameters>;

/// Result of one STA evaluation.
struct StaResult {
  /// Arrival time per endpoint, aligned with StaEngine::endpoints().
  std::vector<double> endpoint_arrival;
  /// Worst (largest) endpoint arrival — the circuit delay.
  double worst_delay = 0.0;
};

/// Per-gate internals of one STA evaluation, for consumers that need more
/// than endpoint arrivals (critical-path extraction, the canonical SSTA's
/// nominal linearization point).
struct StaTrace {
  std::vector<double> arrival;      // per gate (output pin)
  std::vector<double> slew;         // per gate (output pin)
  /// Index into gate.fanin of the arc that set the gate's arrival
  /// (SIZE_MAX for startpoints).
  std::vector<std::size_t> worst_arc;
};

/// Precompiled timing view of one placed netlist.
class StaEngine {
 public:
  StaEngine(const circuit::Netlist& netlist,
            const placer::Placement& placement, const CellLibrary& library);

  /// Timing endpoints: primary outputs, then flip-flop D pins.
  const std::vector<std::size_t>& endpoints() const {
    return levelization_.endpoints;
  }
  std::size_t num_endpoints() const { return levelization_.endpoints.size(); }

  /// Logic depth (informational).
  std::size_t depth() const { return levelization_.depth; }

  /// Runs STA with the given per-gate parameters. When `trace` is non-null
  /// it receives the per-gate arrivals/slews/worst arcs.
  StaResult run(const ParameterView& parameters,
                StaTrace* trace = nullptr) const;

  /// Runs STA at nominal process (all parameters zero).
  StaResult run_nominal(StaTrace* trace = nullptr) const;

  /// Wire Elmore delay on the arc into fanin k of gate g (precomputed).
  double edge_elmore(std::size_t gate, std::size_t fanin_index) const {
    return edge_elmore_[gate][fanin_index];
  }

  /// Driver load capacitance of gate g's output net.
  double load_capacitance(std::size_t gate) const { return load_cap_[gate]; }

  /// The characterized cell of gate g (nullptr for pads).
  const TimingCell* cell(std::size_t gate) const { return cell_[gate]; }

  /// Index of gate g within the physical-gate (sampler) ordering, or
  /// SIZE_MAX for pads.
  std::size_t physical_index(std::size_t gate) const {
    return physical_index_[gate];
  }

  const Technology& technology() const { return technology_; }
  const circuit::Levelization& levelization() const { return levelization_; }

  const circuit::Netlist& netlist() const { return netlist_; }

 private:
  double delay_factor(std::size_t gate, const ParameterView& parameters,
                      const RankOneQuadratic& sensitivity) const;

  const circuit::Netlist& netlist_;
  const CellLibrary& library_;
  circuit::Levelization levelization_;
  Technology technology_;

  std::vector<const TimingCell*> cell_;       // per gate; nullptr for pads
  std::vector<double> load_cap_;              // per gate output
  std::vector<std::vector<double>> edge_elmore_;  // [gate][fanin index]
  std::vector<std::size_t> physical_index_;   // per gate; npos for pads
  static constexpr std::size_t kNoPhysical = static_cast<std::size_t>(-1);
};

}  // namespace sckl::timing
