#include "timing/stat_gate_model.h"

#include <algorithm>

namespace sckl::timing {

const char* stat_parameter_name(std::size_t parameter) {
  switch (parameter) {
    case kParamL:
      return "L";
    case kParamW:
      return "W";
    case kParamVt:
      return "Vt";
    case kParamTox:
      return "tox";
    default:
      return "?";
  }
}

double RankOneQuadratic::factor(const StatVector& p, double min_factor) const {
  double lin = 0.0;
  double proj = 0.0;
  for (std::size_t i = 0; i < kNumStatParameters; ++i) {
    lin += linear[i] * p[i];
    proj += direction[i] * p[i];
  }
  return std::max(min_factor, 1.0 + lin + quadratic * proj * proj);
}

}  // namespace sckl::timing
