#include "timing/critical_path.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/error.h"

namespace sckl::timing {

CriticalPath extract_critical_path(const StaEngine& engine,
                                   const StaResult& result,
                                   const StaTrace& trace) {
  const circuit::Netlist& netlist = engine.netlist();
  require(trace.arrival.size() == netlist.num_gates_total(),
          "extract_critical_path: trace does not match the netlist");
  require(result.endpoint_arrival.size() == engine.num_endpoints(),
          "extract_critical_path: result does not match the engine");

  // Worst endpoint.
  std::size_t worst_index = 0;
  for (std::size_t e = 1; e < result.endpoint_arrival.size(); ++e)
    if (result.endpoint_arrival[e] > result.endpoint_arrival[worst_index])
      worst_index = e;

  CriticalPath path;
  path.endpoint = engine.endpoints()[worst_index];
  path.delay = result.endpoint_arrival[worst_index];

  // Walk back: endpoint input -> driving gate -> worst arc chain.
  std::vector<std::size_t> reversed;
  std::size_t gate = netlist.gate(path.endpoint).fanin[0];
  while (true) {
    reversed.push_back(gate);
    const std::size_t arc = trace.worst_arc[gate];
    if (arc == static_cast<std::size_t>(-1)) break;  // startpoint reached
    gate = netlist.gate(gate).fanin[arc];
  }
  std::reverse(reversed.begin(), reversed.end());

  double previous_arrival = 0.0;
  for (std::size_t g : reversed) {
    CriticalPathStep step;
    step.gate = g;
    step.arrival = trace.arrival[g];
    step.slew = trace.slew[g];
    step.increment = step.arrival - previous_arrival;
    previous_arrival = step.arrival;
    path.steps.push_back(step);
  }
  return path;
}

std::string format_critical_path(const circuit::Netlist& netlist,
                                 const CriticalPath& path) {
  std::ostringstream out;
  out << "Critical path to endpoint '" << netlist.gate(path.endpoint).name
      << "' (" << path.delay << " ps):\n";
  out << "  " << std::setw(16) << "gate" << std::setw(8) << "cell"
      << std::setw(12) << "arrival" << std::setw(12) << "slew"
      << std::setw(12) << "incr" << '\n';
  for (const auto& step : path.steps) {
    const circuit::Gate& gate = netlist.gate(step.gate);
    out << "  " << std::setw(16) << gate.name << std::setw(8)
        << circuit::cell_function_name(gate.function) << std::setw(12)
        << step.arrival << std::setw(12) << step.slew << std::setw(12)
        << step.increment << '\n';
  }
  return out.str();
}

}  // namespace sckl::timing
