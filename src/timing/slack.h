// Required-time / slack analysis (the backward STA pass).
//
// Given a forward trace and a timing constraint (required arrival at every
// endpoint), propagate required times backward through the worst-arc graph:
//   required(u) = min over fanout arcs (u -> v, arc k) of
//                 required(v) - arc_delay(v, k) - wire(v, k)
// and report slack = required - arrival per gate. Slack is how production
// STA ranks criticality; the tests pin the invariants (critical-path gates
// share the worst slack; slacks are monotone along any path).
#pragma once

#include <vector>

#include "timing/sta.h"

namespace sckl::timing {

/// Slack analysis of one traced STA evaluation.
struct SlackReport {
  double required_time = 0.0;      // endpoint constraint used
  std::vector<double> required;    // per gate output (+inf if unconstrained)
  std::vector<double> slack;       // per gate output
  double worst_slack = 0.0;        // min over all gates
  std::size_t num_negative = 0;    // gates with slack < 0
};

/// Computes slacks for the given traced run under `required_time` at every
/// endpoint. `trace` must come from `engine.run(..., &trace)`.
SlackReport compute_slacks(const StaEngine& engine, const StaTrace& trace,
                           double required_time);

}  // namespace sckl::timing
