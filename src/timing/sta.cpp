#include "timing/sta.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "timing/rc_tree.h"

namespace sckl::timing {

using circuit::CellFunction;

StaEngine::StaEngine(const circuit::Netlist& netlist,
                     const placer::Placement& placement,
                     const CellLibrary& library)
    : netlist_(netlist),
      library_(library),
      levelization_(circuit::levelize(netlist)),
      technology_(library.technology()) {
  require(placement.location.size() == netlist.num_gates_total(),
          "StaEngine: placement does not cover the netlist");
  const std::size_t n = netlist.num_gates_total();
  cell_.assign(n, nullptr);
  load_cap_.assign(n, 0.0);
  edge_elmore_.assign(n, {});
  physical_index_.assign(n, kNoPhysical);

  for (std::size_t c = 0; c < netlist.physical_gates().size(); ++c)
    physical_index_[netlist.physical_gates()[c]] = c;

  for (std::size_t g = 0; g < n; ++g) {
    const circuit::Gate& gate = netlist.gate(g);
    if (gate.function != CellFunction::kInput &&
        gate.function != CellFunction::kOutput)
      cell_[g] = &library.cell_for(gate.function, gate.fanin.size());
  }

  // Wire parasitics, per the selected interconnect model.
  const double r_unit = technology_.wire_resistance_per_unit;
  const double c_unit = technology_.wire_capacitance_per_unit;
  auto pin_cap_of = [this](std::size_t sink) {
    return cell_[sink] != nullptr ? cell_[sink]->input_cap
                                  : technology_.primary_output_cap;
  };

  // Per-sink wire delay, filled below and gathered into edge_elmore_.
  std::vector<std::vector<double>> sink_elmore(n);

  for (std::size_t g = 0; g < n; ++g) {
    const circuit::Gate& gate = netlist.gate(g);
    sink_elmore[g].assign(gate.fanout.size(), 0.0);
    if (gate.fanout.empty()) {
      load_cap_[g] = 0.0;
      continue;
    }
    const geometry::Point2 at = placement.location[g];

    if (technology_.wire_model == WireModel::kStarHpwl) {
      // The paper's model: driver load C = c_unit * HPWL + pin caps; each
      // sink sees an independent segment of its Manhattan length,
      // elmore = R_seg (C_seg/2 + C_pin).
      double min_x = at.x;
      double max_x = at.x;
      double min_y = at.y;
      double max_y = at.y;
      double pin_cap = 0.0;
      for (std::size_t s = 0; s < gate.fanout.size(); ++s) {
        const std::size_t sink = gate.fanout[s];
        const geometry::Point2 q = placement.location[sink];
        min_x = std::min(min_x, q.x);
        max_x = std::max(max_x, q.x);
        min_y = std::min(min_y, q.y);
        max_y = std::max(max_y, q.y);
        pin_cap += pin_cap_of(sink);
        const double length = geometry::manhattan_distance(at, q);
        const double seg_r = r_unit * length;
        const double seg_c = c_unit * length;
        sink_elmore[g][s] = seg_r * (0.5 * seg_c + pin_cap_of(sink));
      }
      const double hpwl = (max_x - min_x) + (max_y - min_y);
      load_cap_[g] = c_unit * hpwl + pin_cap;
    } else {
      // Shared-trunk RC tree: driver -> net center of mass -> sinks, each
      // segment as an RC pi (half the segment cap at each end). Sinks share
      // the trunk's delay, as on a routed net.
      geometry::Point2 center = at;
      for (std::size_t sink : gate.fanout)
        center = center + placement.location[sink];
      center = (1.0 / static_cast<double>(gate.fanout.size() + 1)) * center;

      RcTree tree;
      const double trunk_length = geometry::manhattan_distance(at, center);
      const double trunk_c = c_unit * trunk_length;
      const std::size_t trunk_node =
          tree.add_node(0, r_unit * trunk_length, 0.5 * trunk_c);
      tree.add_capacitance(0, 0.5 * trunk_c);
      std::vector<std::size_t> sink_nodes;
      sink_nodes.reserve(gate.fanout.size());
      for (std::size_t sink : gate.fanout) {
        const double branch_length = geometry::manhattan_distance(
            center, placement.location[sink]);
        const double branch_c = c_unit * branch_length;
        const std::size_t node = tree.add_node(
            trunk_node, r_unit * branch_length,
            0.5 * branch_c + pin_cap_of(sink));
        tree.add_capacitance(trunk_node, 0.5 * branch_c);
        sink_nodes.push_back(node);
      }
      const std::vector<double> delays = tree.elmore_delays();
      for (std::size_t s = 0; s < sink_nodes.size(); ++s)
        sink_elmore[g][s] = delays[sink_nodes[s]];
      load_cap_[g] = tree.total_capacitance();
    }
  }

  // Gather per-sink delays into fanin-indexed form. A gate can appear
  // multiple times in a driver's fanout (multi-pin connections); consume
  // occurrences in order.
  std::vector<std::size_t> cursor(n, 0);
  for (std::size_t g = 0; g < n; ++g) {
    const circuit::Gate& gate = netlist.gate(g);
    edge_elmore_[g].resize(gate.fanin.size(), 0.0);
    for (std::size_t k = 0; k < gate.fanin.size(); ++k) {
      const std::size_t driver = gate.fanin[k];
      const circuit::Gate& drv = netlist.gate(driver);
      std::size_t slot = cursor[driver]++;
      // Locate this gate among the driver's fanout starting at `slot`.
      while (slot < drv.fanout.size() && drv.fanout[slot] != g) ++slot;
      ensure(slot < drv.fanout.size(),
             "StaEngine: fanout/fanin inconsistency");
      cursor[driver] = slot + 1;
      edge_elmore_[g][k] = sink_elmore[driver][slot];
    }
  }
}

double StaEngine::delay_factor(std::size_t gate,
                               const ParameterView& parameters,
                               const RankOneQuadratic& sensitivity) const {
  const std::size_t index = physical_index_[gate];
  if (index == kNoPhysical) return 1.0;
  StatVector p{};
  for (std::size_t j = 0; j < kNumStatParameters; ++j)
    p[j] = parameters[j] != nullptr ? parameters[j][index] : 0.0;
  return sensitivity.factor(p);
}

StaResult StaEngine::run(const ParameterView& parameters,
                         StaTrace* trace) const {
  const std::size_t n = netlist_.num_gates_total();
  std::vector<double> arrival(n, 0.0);
  std::vector<double> slew(n, technology_.min_slew);
  std::vector<std::size_t> worst_arc;
  if (trace != nullptr)
    worst_arc.assign(n, static_cast<std::size_t>(-1));

  for (std::size_t g : levelization_.topological_order) {
    const circuit::Gate& gate = netlist_.gate(g);
    switch (gate.function) {
      case CellFunction::kInput:
        arrival[g] = 0.0;
        slew[g] = technology_.primary_input_slew;
        break;
      case CellFunction::kOutput:
        break;  // endpoint; evaluated below
      case CellFunction::kDff: {
        // Launch: clk -> Q through the sequential cell.
        const TimingCell& cell = *cell_[g];
        const double df =
            delay_factor(g, parameters, cell.delay_sensitivity);
        const double sf =
            delay_factor(g, parameters, cell.slew_sensitivity);
        arrival[g] =
            cell.delay.lookup(technology_.clock_slew, load_cap_[g]) * df;
        slew[g] = std::max(
            technology_.min_slew,
            cell.output_slew.lookup(technology_.clock_slew, load_cap_[g]) *
                sf);
        break;
      }
      default: {
        const TimingCell& cell = *cell_[g];
        const double df =
            delay_factor(g, parameters, cell.delay_sensitivity);
        const double sf =
            delay_factor(g, parameters, cell.slew_sensitivity);
        double best_arrival = 0.0;
        double best_slew = technology_.min_slew;
        for (std::size_t k = 0; k < gate.fanin.size(); ++k) {
          const std::size_t u = gate.fanin[k];
          const double wire = edge_elmore_[g][k];
          const double in_arrival = arrival[u] + wire;
          const double in_slew =
              std::max(technology_.min_slew, wire_output_slew(slew[u], wire));
          const double d = cell.delay.lookup(in_slew, load_cap_[g]) * df;
          const double candidate = in_arrival + d;
          if (k == 0 || candidate > best_arrival) {
            best_arrival = candidate;
            best_slew = cell.output_slew.lookup(in_slew, load_cap_[g]) * sf;
            if (trace != nullptr) worst_arc[g] = k;
          }
        }
        arrival[g] = best_arrival;
        slew[g] = std::max(technology_.min_slew, best_slew);
        break;
      }
    }
  }

  StaResult result;
  result.endpoint_arrival.reserve(levelization_.endpoints.size());
  for (std::size_t endpoint : levelization_.endpoints) {
    const circuit::Gate& gate = netlist_.gate(endpoint);
    // Endpoint arrival is at the *input* pin: fanin arrival plus its wire.
    ensure(!gate.fanin.empty(), "StaEngine: endpoint without fanin");
    const std::size_t u = gate.fanin[0];
    const double value = arrival[u] + edge_elmore_[endpoint][0];
    result.endpoint_arrival.push_back(value);
    result.worst_delay = std::max(result.worst_delay, value);
  }
  if (trace != nullptr) {
    trace->arrival = std::move(arrival);
    trace->slew = std::move(slew);
    trace->worst_arc = std::move(worst_arc);
  }
  return result;
}

StaResult StaEngine::run_nominal(StaTrace* trace) const {
  return run(ParameterView{nullptr, nullptr, nullptr, nullptr}, trace);
}

}  // namespace sckl::timing
