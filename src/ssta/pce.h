// Hermite polynomial-chaos surrogate of the circuit delay.
//
// Bhardwaj et al. [2] (the paper's closest prior work) propagate timing in
// a polynomial-chaos basis; here we fit a second-order Hermite PCE of the
// *worst delay* in the leading KLE random variables by regression on Monte
// Carlo samples:
//
//   delay(xi) ~ c0 + sum_d c_d H1(xi_d) + sum_d c_dd H2(xi_d)
//               + sum_{d<e} c_de xi_d xi_e      (orthonormal Hermite basis)
//
// Because the basis is orthonormal under the Gaussian measure, the model
// yields closed-form statistics: mean = c0, variance = sum of squared
// non-constant coefficients (+ residual), and — the interesting part — a
// per-KLE-mode variance decomposition: which spatial correlation modes
// actually drive timing variability (Sobol first-order indices).
#pragma once

#include <cstdint>
#include <vector>

#include "ssta/canonical.h"

namespace sckl::ssta {

/// Options for the PCE fit.
struct PceOptions {
  std::size_t dims_per_parameter = 4;  // leading KLE modes kept per parameter
  std::size_t num_samples = 1200;      // regression sample budget
  std::uint64_t seed = 99;
  bool use_latin_hypercube = true;     // stratified regression samples
};

/// Fitted second-order Hermite PCE over k selected dimensions.
class PceModel {
 public:
  PceModel(std::size_t dims, linalg::Vector coefficients,
           double residual_variance);

  std::size_t num_dimensions() const { return dims_; }
  std::size_t num_terms() const { return coefficients_.size(); }

  /// Analytic statistics of the surrogate.
  double mean() const { return coefficients_[0]; }
  double variance() const;
  double sigma() const;

  /// Fraction of the surrogate variance explained by dimension d alone
  /// (its linear + pure-quadratic terms; Sobol first-order index).
  double main_effect_fraction(std::size_t d) const;

  /// Fraction of variance in cross (interaction) terms.
  double interaction_fraction() const;

  /// Residual (unexplained) variance of the regression.
  double residual_variance() const { return residual_variance_; }

  /// Evaluates the surrogate at a point in the selected dimensions.
  double evaluate(const linalg::Vector& xi) const;

  /// Basis layout helpers: index of the linear / pure-quadratic / cross
  /// coefficient in the coefficient vector.
  std::size_t linear_index(std::size_t d) const;
  std::size_t quadratic_index(std::size_t d) const;
  std::size_t cross_index(std::size_t d, std::size_t e) const;

 private:
  std::size_t dims_;
  linalg::Vector coefficients_;
  double residual_variance_;
};

/// Result of the full PCE analysis on a circuit.
struct PceAnalysis {
  PceModel model;
  /// For each selected dimension: (parameter index, KLE mode index).
  std::vector<std::pair<std::size_t, std::size_t>> dimension_origin;
  double fit_seconds = 0.0;
};

/// Fits the worst-delay PCE for `engine` under the spatial model given by
/// the per-parameter KLE operators (see canonical.h). The selected basis
/// dimensions are the leading `dims_per_parameter` KLE modes of each of the
/// four parameters (eigenvalue order = variance order).
PceAnalysis fit_worst_delay_pce(const timing::StaEngine& engine,
                                const ParameterOperators& operators,
                                const PceOptions& options = {});

}  // namespace sckl::ssta
