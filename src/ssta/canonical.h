// Canonical first-order block-based SSTA on the KLE basis.
//
// The paper notes that the uncorrelated RVs produced by the KLE "simplify
// the computations in a typical SSTA algorithm" (Sec. 2.1, citing the
// canonical-form engines of Visweswariah [6] and Chang-Sapatnekar [5]).
// This module is that application, built as an extension on top of the
// Monte Carlo reproduction:
//
//   - every timing quantity is a canonical form
//       T = mean + sum_i s_i xi_i + s_ind * eta,
//     where the xi_i are the KLE random variables of the four statistical
//     parameters (4r of them) and eta is an independent N(0,1) absorbing
//     whatever variance the shared basis cannot represent;
//   - gate delays are linearized at the nominal corner: the rank-one
//     quadratic factor (1 + b^T p + gamma (v^T p)^2) contributes
//     d0 * b_j * G_param(gate, i) to the sensitivity on xi_i, with G the
//     per-gate KLE reconstruction operator, plus the exact mean/variance of
//     the quadratic term folded into the mean and the independent part;
//   - slews are propagated as canonical forms too: a slow upstream gate
//     produces a slow edge that further slows downstream gates. The NLDM
//     derivatives d(delay)/d(slew_in) and d(slew_out)/d(slew_in) are taken
//     by finite differences at the nominal point and chain the upstream
//     slew deviation into downstream delay sensitivities (ignoring this
//     channel systematically underestimates sigma by ~10%);
//   - addition is exact; maximum uses Clark's moment formulas with the
//     correlation implied by the shared sensitivities, sensitivities
//     blended by tightness probability, and the independent part chosen to
//     match Clark's total variance.
//
// One propagation pass yields the full circuit-delay distribution — the
// bench compares its mean/sigma and runtime against the Monte Carlo engine.
#pragma once

#include <array>
#include <vector>

#include "core/kle_field.h"
#include "linalg/matrix.h"
#include "timing/sta.h"

namespace sckl::ssta {

/// First-order canonical timing quantity over a shared normal basis.
class CanonicalForm {
 public:
  CanonicalForm() = default;

  /// A deterministic value (no variation).
  static CanonicalForm constant(double value, std::size_t basis_size);

  double mean() const { return mean_; }
  double variance() const;
  double sigma() const;
  const linalg::Vector& sensitivities() const { return sensitivity_; }
  double independent() const { return independent_; }
  std::size_t basis_size() const { return sensitivity_.size(); }

  /// Adds a deterministic offset (wire delay).
  void shift(double delta) { mean_ += delta; }

  /// Returns this form scaled by k (mean, sensitivities, independent).
  CanonicalForm scaled_by(double k) const;

  /// Adds another canonical form: sensitivities add, independent parts add
  /// in quadrature (they are independent by construction).
  CanonicalForm& operator+=(const CanonicalForm& other);

  /// Covariance/correlation implied by the shared basis.
  static double covariance(const CanonicalForm& x, const CanonicalForm& y);

  /// Clark's maximum of two canonical forms (variance-matched).
  static CanonicalForm maximum(const CanonicalForm& x,
                               const CanonicalForm& y);

  /// Direct construction (used by the engine and tests).
  CanonicalForm(double mean, linalg::Vector sensitivity, double independent);

 private:
  double mean_ = 0.0;
  linalg::Vector sensitivity_;
  double independent_ = 0.0;
};

/// Standard normal CDF / PDF (exposed for tests).
double normal_cdf(double x);
double normal_pdf(double x);

/// Per-parameter location operators: for each of the 4 statistical
/// parameters, the (num_physical_gates x r) matrix G mapping the KLE RVs to
/// that parameter's per-gate values (KleField::location_operator()).
using ParameterOperators = std::array<const linalg::Matrix*,
                                      timing::kNumStatParameters>;

/// Result of the canonical propagation.
struct CanonicalSstaResult {
  CanonicalForm worst_delay;                  // circuit-delay distribution
  std::vector<CanonicalForm> endpoint;        // per endpoint
  double seconds = 0.0;                       // propagation wall time
};

/// Runs the canonical SSTA. The engine's nominal trace provides the
/// linearization point (nominal arc delays and slews); `operators` supply
/// the spatial-correlation structure. All four operators must have
/// `engine`'s physical gate count as row count; their column counts (r) may
/// differ per parameter.
CanonicalSstaResult run_canonical_ssta(const timing::StaEngine& engine,
                                       const ParameterOperators& operators);

}  // namespace sckl::ssta
