// The durable lease ledger behind checkpointed Monte Carlo runs, factored
// out of mc_run so remote workers can share it.
//
// A run's sample blocks are grouped into fixed leases; LeaseCoordinator
// tracks the lease state machine in memory and owns the append-only ledger
// (store/record_log.h). PR 7 used it from worker threads inside one
// process; this header additionally exposes the remote half of the same
// machine: a serve-protocol coordinator hands leases to workers on other
// machines (claim_remote), keeps them alive while the worker heartbeats
// (heartbeat), and accepts their finished partials (publish_remote). The
// state machine is unchanged — a remote worker is just a claimer whose
// liveness signal arrives over RPC instead of being implied by a live
// thread:
//
//   Available ──claim/claim_remote──▶ Claimed(owner, expiry)
//        ▲                                │            │
//        └────────── expired ────────────┘         publish
//                (no heartbeat within TTL)             │
//                                                      ▼
//                                                  Complete
//
// Recompute-on-reclaim preserves bit-exactness because lease partials are
// pure functions of (workload, options, block range): whichever claimer
// publishes first commits the exact bits any other claimer would have,
// so late duplicates are discarded without changing the fold.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/wire.h"
#include "ssta/mc_ssta.h"
#include "store/record_log.h"

namespace sckl::ssta {

/// Ledger record tags: one header record, then one record per lease.
constexpr std::uint8_t kLedgerHeaderTag = 1;
constexpr std::uint8_t kLedgerLeaseTag = 2;

/// True when `id` is non-empty, at most 128 chars of [A-Za-z0-9._-], and
/// not "." / ".." — i.e. safe to embed in ledger file names.
bool valid_run_id(const std::string& id);

/// The sampling-geometry fields a ledger is bound to. Everything here must
/// match between the run that wrote a ledger and the run resuming it —
/// sample indices, block boundaries, and the fold nesting all derive from
/// these values. Remote workers receive these same fields in the
/// ClaimLeases reply and must use them verbatim.
struct LedgerHeader {
  std::uint64_t workload_key = 0;
  std::uint64_t num_samples = 0;
  std::uint64_t block_size = 0;
  std::uint64_t lease_blocks = 0;
  std::uint64_t seed = 0;
  std::uint64_t sketch_capacity = 0;
  std::uint64_t num_endpoints = 0;

  void encode(std::vector<std::uint8_t>& out) const;
  /// Decodes the body; the caller has already consumed kLedgerHeaderTag.
  static LedgerHeader decode(wire::ByteReader& r);
  bool operator==(const LedgerHeader& other) const;
};

enum class LeaseState { kAvailable, kClaimed, kComplete };

struct Lease {
  std::size_t first_block = 0;
  std::size_t num_blocks = 0;
  LeaseState state = LeaseState::kAvailable;
  std::chrono::steady_clock::time_point expiry{};
  std::uint64_t owner = 0;           // 0 = a local worker thread
  bool was_reclaimed = false;        // a prior claim on it expired
  detail::BlockPartial partial;      // valid once kComplete
};

/// What the checkpointed runner did, for reporting and tests.
struct McRunStats {
  std::size_t leases_total = 0;
  std::size_t leases_resumed = 0;   // loaded complete from the ledger
  std::size_t leases_claimed = 0;   // claimed by local worker threads
  std::size_t leases_expired = 0;   // reclaimed from an expired claim
  std::size_t leases_recomputed = 0;  // completions of reclaimed leases
  std::size_t leases_remote_claimed = 0;    // handed to remote workers
  std::size_t leases_remote_published = 0;  // committed by remote workers
  std::size_t ledger_appends = 0;
  bool recovered_torn_tail = false;  // open() truncated a torn record
};

/// One lease handed to a remote worker by claim_remote.
struct ClaimedLease {
  std::size_t index = 0;
  std::size_t first_block = 0;
  std::size_t num_blocks = 0;
};

/// Snapshot of the lease table, for RunStatus and progress decisions.
struct LeaseProgress {
  std::size_t total = 0;
  std::size_t complete = 0;
  std::size_t claimed = 0;
};

/// Tracks lease states and owns the ledger appends. One mutex covers the
/// lease table, the ledger, and the stats — publishing a lease is a single
/// critical section, so the ledger order always matches completion order.
/// All methods are thread-safe; leases() is only safe once every claimer
/// (local threads and the serve registry) has quiesced.
class LeaseCoordinator {
 public:
  /// `ttl_seconds` bounds how long a claim may go without a completion or
  /// heartbeat before it is reclaimed; `num_endpoints` validates remote
  /// partials before they touch the ledger.
  LeaseCoordinator(std::vector<Lease> leases, store::RecordLog log,
                   double ttl_seconds, std::size_t num_endpoints,
                   McRunStats& stats);

  /// Claims the next available lease (reclaiming any time-expired claim on
  /// the way); returns its index or npos when nothing remains claimable.
  std::size_t claim();

  /// Remote claim: hands up to `max_leases` available leases to `worker`
  /// (nonzero), reclaiming expired claims on the way. Each claim starts a
  /// fresh TTL window that heartbeat() extends.
  std::vector<ClaimedLease> claim_remote(std::uint64_t worker,
                                         std::size_t max_leases);

  /// Publishes a finished lease: appends its record durably, then marks it
  /// complete. Returns false when the claim had expired (deadline passed,
  /// or the mc_lease_expire fault fired) — the lease goes back to
  /// Available and the completion is discarded, exactly what happens to a
  /// worker whose lease a coordinator already gave away. A lease someone
  /// else already completed is silently discarded too (same bits).
  bool publish(std::size_t index, const detail::BlockPartial& partial,
               std::uint64_t parent_span_id);

  /// Remote publish. Validates the wire-supplied geometry against the
  /// lease table (kPrecondition on mismatch — a worker speaking about a
  /// different run geometry), then commits like publish(). Returns false
  /// when the lease is no longer claimed or the claim expired: the worker
  /// must discard its partial and claim again. Ownership is deliberately
  /// NOT checked — a slow original claimer's bits are identical to the
  /// re-claimer's, and first completion wins.
  bool publish_remote(std::uint64_t worker, std::size_t index,
                      std::size_t first_block, std::size_t num_blocks,
                      const detail::BlockPartial& partial);

  /// Extends the expiry of every lease currently claimed by `worker`;
  /// returns how many were extended. An already-expired claim is not
  /// revived — the worker learns its lease is gone when publish fails.
  std::size_t heartbeat(std::uint64_t worker);

  LeaseProgress progress() const;
  bool all_complete() const;

  /// Blocks until remote activity (claim / publish / heartbeat) moves the
  /// activity counter past `last_seen`, or `timeout_seconds` elapses.
  /// Updates `last_seen` and returns whether anything happened — the
  /// local-fallback loop uses "false" as its cue to start computing.
  bool wait_for_remote_activity(std::uint64_t& last_seen,
                                double timeout_seconds);
  std::uint64_t activity_count() const;

  const std::vector<Lease>& leases() const { return leases_; }

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  using Clock = std::chrono::steady_clock;

  void expire_locked(Lease& lease);
  /// Appends the lease record and marks the lease complete. The
  /// mc_coordinator_crash site fires right after the durable append — the
  /// worst instant for a coordinator to die, since the commit is on disk
  /// but nothing in memory (or on any worker) knows yet.
  void commit_locked(Lease& lease, const detail::BlockPartial& partial,
                     std::uint64_t parent_span_id);
  void bump_activity_locked();

  mutable std::mutex mutex_;
  std::condition_variable activity_cv_;
  std::uint64_t activity_ = 0;
  std::vector<Lease> leases_;
  store::RecordLog log_;
  Clock::duration ttl_;
  std::size_t num_endpoints_ = 0;
  McRunStats& stats_;
};

}  // namespace sckl::ssta
