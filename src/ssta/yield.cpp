#include "ssta/yield.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "field/lhs.h"

namespace sckl::ssta {
double empirical_yield(const std::vector<double>& samples, double period) {
  require(!samples.empty(), "empirical_yield: no samples");
  std::size_t passing = 0;
  for (double s : samples) passing += (s <= period) ? 1 : 0;
  return static_cast<double>(passing) / static_cast<double>(samples.size());
}

std::vector<YieldPoint> empirical_yield_curve(
    const std::vector<double>& samples, std::size_t points) {
  require(!samples.empty(), "empirical_yield_curve: no samples");
  require(points >= 2, "empirical_yield_curve: need at least two points");
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  const double margin = 0.02 * (sorted.back() - sorted.front() + 1.0);
  const double lo = sorted.front() - margin;
  const double hi = sorted.back() + margin;
  std::vector<YieldPoint> curve;
  curve.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double period =
        lo + (hi - lo) * static_cast<double>(i) /
                 static_cast<double>(points - 1);
    // Sorted samples: passing count by binary search.
    const auto it = std::upper_bound(sorted.begin(), sorted.end(), period);
    curve.push_back(
        {period, static_cast<double>(it - sorted.begin()) /
                     static_cast<double>(sorted.size())});
  }
  return curve;
}

double canonical_yield(const CanonicalForm& worst_delay, double period) {
  const double sigma = worst_delay.sigma();
  if (sigma <= 0.0) return period >= worst_delay.mean() ? 1.0 : 0.0;
  return normal_cdf((period - worst_delay.mean()) / sigma);
}

std::vector<YieldPoint> canonical_yield_curve(
    const CanonicalForm& worst_delay,
    const std::vector<YieldPoint>& period_grid) {
  std::vector<YieldPoint> curve;
  curve.reserve(period_grid.size());
  for (const auto& point : period_grid)
    curve.push_back(
        {point.period, canonical_yield(worst_delay, point.period)});
  return curve;
}

double canonical_period_for_yield(const CanonicalForm& worst_delay,
                                  double target_yield) {
  return worst_delay.mean() +
         worst_delay.sigma() * field::inverse_normal_cdf(target_yield);
}

}  // namespace sckl::ssta
