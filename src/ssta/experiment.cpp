#include "ssta/experiment.h"

#include <cmath>
#include <utility>

#include "circuit/synthetic.h"
#include "common/error.h"
#include "common/statistics.h"
#include "common/stopwatch.h"
#include "field/cholesky_sampler.h"
#include "field/kle_sampler.h"
#include "kernels/kernel_fit.h"
#include "kernels/kernel_library.h"
#include "mesh/refine.h"

namespace sckl::ssta {

double ExperimentResult::mean_endpoint_sigma_error() const {
  if (endpoint_sigma_error.empty()) return 0.0;
  return mean_of(endpoint_sigma_error);
}

ExperimentPipeline::ExperimentPipeline(const ExperimentConfig& config)
    : config_(config) {
  netlist_ = std::make_unique<circuit::Netlist>(
      circuit::make_paper_circuit(config.circuit, config.seed));
  placer::PlacerOptions placer_options;
  placer_options.seed = config.seed + 17;
  placement_ = std::make_unique<placer::Placement>(placer::place(
      *netlist_, geometry::BoundingBox::unit_die(), placer_options));
  library_ =
      std::make_unique<timing::CellLibrary>(timing::CellLibrary::default_90nm());
  engine_ =
      std::make_unique<timing::StaEngine>(*netlist_, *placement_, *library_);
  locations_ = placement_->physical_locations(*netlist_);

  const double c = config.kernel_c > 0.0 ? config.kernel_c
                                         : kernels::paper_gaussian_c();
  kernel_ = std::make_unique<kernels::GaussianKernel>(c);
}

const McSstaResult& ExperimentPipeline::reference() {
  if (!reference_) {
    Stopwatch setup;
    const field::CholeskyFieldSampler sampler(*kernel_, locations_);
    reference_setup_seconds_ = setup.seconds();
    const ParameterSamplers samplers{&sampler, &sampler, &sampler, &sampler};
    McSstaOptions options;
    options.num_samples = config_.num_samples;
    options.seed = config_.seed + 1000;
    reference_ = std::make_unique<McSstaResult>(
        run_monte_carlo_ssta(*engine_, samplers, options));
  }
  return *reference_;
}

double ExperimentPipeline::reference_setup_seconds() {
  reference();
  return reference_setup_seconds_;
}

store::KleArtifactConfig ExperimentPipeline::artifact_config(
    std::size_t num_eigenpairs) const {
  store::KleArtifactConfig config;
  store::describe_kernel(*kernel_, config.kernel_id, config.kernel_params);
  config.die = geometry::BoundingBox::unit_die();
  config.mesh.kind = store::MeshSpec::Kind::kPaperRefined;
  config.mesh.area_fraction = config_.mesh_area_fraction;
  config.mesh.mesher_seed = config_.seed + 7;
  config.quadrature = core::QuadratureRule::kCentroid1;
  config.num_eigenpairs = num_eigenpairs;
  return config;
}

McSstaResult ExperimentPipeline::run_kle_stored(
    store::KleArtifactStore& store, std::size_t r, std::size_t num_eigenpairs,
    double* fetch_seconds, store::FetchSource* source,
    std::size_t* mesh_triangles, KleRunInfo* info, bool validate) {
  Stopwatch setup;
  const store::FetchResult fetch =
      store.get_or_compute(artifact_config(num_eigenpairs), *kernel_);
  const field::KleFieldSampler sampler(*fetch.artifact, r, locations_);
  if (fetch_seconds != nullptr) *fetch_seconds = setup.seconds();
  if (source != nullptr) *source = fetch.source;
  if (mesh_triangles != nullptr)
    *mesh_triangles = fetch.artifact->mesh().num_triangles();
  if (info != nullptr) {
    info->out_of_mesh_gates = sampler.out_of_mesh_count();
    if (validate) {
      info->validated = true;
      info->health = core::check_kle_health(fetch.artifact->kle());
    }
  }

  const ParameterSamplers samplers{&sampler, &sampler, &sampler, &sampler};
  McSstaOptions options;
  options.num_samples = config_.num_samples;
  options.seed = config_.seed + 1000;
  return run_monte_carlo_ssta(*engine_, samplers, options);
}

McSstaResult ExperimentPipeline::run_kle(const mesh::TriMesh& mesh,
                                         std::size_t r,
                                         std::size_t num_eigenpairs,
                                         double* solve_seconds,
                                         KleRunInfo* info, bool validate) {
  Stopwatch setup;
  core::KleOptions kle_options;
  kle_options.num_eigenpairs =
      std::min<std::size_t>(num_eigenpairs, mesh.num_triangles());
  const core::KleResult kle = core::solve_kle(
      mesh, *kernel_, kle_options, info != nullptr ? &info->solve : nullptr);
  const field::KleFieldSampler sampler(kle, r, locations_);
  if (solve_seconds != nullptr) *solve_seconds = setup.seconds();
  if (info != nullptr) {
    info->out_of_mesh_gates = sampler.out_of_mesh_count();
    if (validate) {
      info->validated = true;
      info->health = core::check_kle_health(kle);
    }
  }

  const ParameterSamplers samplers{&sampler, &sampler, &sampler, &sampler};
  McSstaOptions options;
  options.num_samples = config_.num_samples;
  // Same seed as the reference: both runs see equally-sized, independent
  // sample sets, mirroring the paper's "100K samples each".
  options.seed = config_.seed + 1000;
  return run_monte_carlo_ssta(*engine_, samplers, options);
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  ExperimentPipeline pipeline(config);

  ExperimentResult result;
  result.circuit = config.circuit;
  result.num_gates = pipeline.num_gates();
  result.r = config.r;

  const McSstaResult& mc = pipeline.reference();
  result.mc_setup_seconds = pipeline.reference_setup_seconds();
  result.mc_run_seconds = mc.sampling_seconds + mc.sta_seconds;
  result.mc_mean = mc.worst_delay.mean();
  result.mc_sigma = mc.worst_delay.stddev();

  const std::size_t pairs =
      config.num_eigenpairs != 0
          ? config.num_eigenpairs
          : std::max<std::size_t>(2 * config.r, 50);
  const bool validate = config.validate_kle || config.strict;
  KleRunInfo info;
  McSstaResult kle;
  if (!config.store_root.empty()) {
    store::KleArtifactStore store(config.store_root);
    store::FetchSource source = store::FetchSource::kSolved;
    kle = pipeline.run_kle_stored(store, config.r, pairs,
                                  &result.kle_setup_seconds, &source,
                                  &result.mesh_triangles, &info, validate);
    result.kle_source = store::to_string(source);
  } else {
    const mesh::TriMesh mesh = mesh::paper_mesh(
        geometry::BoundingBox::unit_die(), config.mesh_area_fraction,
        config.seed + 7);
    result.mesh_triangles = mesh.num_triangles();
    kle = pipeline.run_kle(mesh, config.r, pairs, &result.kle_setup_seconds,
                           &info, validate);
  }
  result.out_of_mesh_gates = info.out_of_mesh_gates;
  if (info.solve.fallback) result.kle_fallback_reason = info.solve.fallback_reason;
  if (validate) {
    // Fold the pipeline-level recoveries into the health report so one
    // artifact carries the whole resilience story (and strict mode can
    // escalate all of it at once).
    robust::HealthReport report = std::move(info.health);
    if (info.solve.fallback)
      report.add(robust::Severity::kWarning, "solver_fallback",
                 info.solve.fallback_reason);
    if (info.out_of_mesh_gates > 0)
      report.add(robust::Severity::kWarning, "out_of_mesh",
                 std::to_string(info.out_of_mesh_gates) +
                     " gate(s) resolved to the nearest mesh triangle");
    result.health_ok = report.ok();
    result.health_summary = report.to_string();
    if (config.strict) report.throw_if_fatal(robust::Severity::kWarning);
  }
  result.kle_run_seconds = kle.sampling_seconds + kle.sta_seconds;
  result.kle_mean = kle.worst_delay.mean();
  result.kle_sigma = kle.worst_delay.stddev();

  result.e_mu_percent =
      100.0 * std::abs(result.kle_mean - result.mc_mean) / result.mc_mean;
  result.e_sigma_percent =
      100.0 * std::abs(result.kle_sigma - result.mc_sigma) / result.mc_sigma;
  result.speedup = result.mc_run_seconds / std::max(result.kle_run_seconds,
                                                    1e-9);

  result.endpoint_sigma_error.reserve(mc.endpoint.size());
  for (std::size_t e = 0; e < mc.endpoint.size(); ++e) {
    const double reference_sigma = mc.endpoint[e].stddev();
    if (reference_sigma <= 0.0) continue;
    result.endpoint_sigma_error.push_back(
        std::abs(kle.endpoint[e].stddev() - reference_sigma) /
        reference_sigma);
  }
  return result;
}

}  // namespace sckl::ssta
