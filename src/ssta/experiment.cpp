#include "ssta/experiment.h"

#include <cmath>
#include <utility>

#include "circuit/synthetic.h"
#include "common/error.h"
#include "common/statistics.h"
#include "obs/stopwatch.h"
#include "obs/trace.h"
#include "field/cholesky_sampler.h"
#include "field/kle_sampler.h"
#include "kernels/kernel_fit.h"
#include "kernels/kernel_library.h"
#include "mesh/refine.h"
#include "store/key_hash.h"

namespace sckl::ssta {

double ExperimentResult::mean_endpoint_sigma_error() const {
  if (endpoint_sigma_error.empty()) return 0.0;
  return mean_of(endpoint_sigma_error);
}

void add_experiment_flags(const CliFlags& flags, ExperimentConfig& config) {
  ExperimentFlagSet set;
  set.circuit = config.circuit;
  set.num_samples = config.num_samples;
  set.r = config.r;
  set.seed = config.seed;
  set.num_threads = config.num_threads;
  set.block_samples = config.mc_block_size;
  set.store_root = config.store_root;
  set.validate = config.validate_kle;
  set.strict = config.strict;
  set.run_id = config.run_id;
  set.resume = config.resume;
  set.lease_ttl_ms = config.lease_ttl_ms;
  set.matrix_free = config.matrix_free;
  set.aca_tol = config.aca_tolerance;
  set.apply(flags);
  config.circuit = set.circuit;
  config.num_samples = set.num_samples;
  config.r = set.r;
  config.seed = set.seed;
  config.num_threads = set.num_threads;
  config.mc_block_size = set.block_samples;
  config.store_root = set.store_root;
  config.validate_kle = set.validate;
  config.strict = set.strict;
  config.run_id = set.run_id;
  config.resume = set.resume;
  config.lease_ttl_ms = set.lease_ttl_ms;
  config.matrix_free = set.matrix_free;
  config.aca_tolerance = set.aca_tol;
}

robust::HealthReport fold_kle_health(const KleRunInfo& info) {
  robust::HealthReport report = info.health;
  if (info.solve.fallback)
    report.add(robust::Severity::kWarning, "solver_fallback",
               info.solve.fallback_reason);
  if (info.out_of_mesh_gates > 0)
    report.add(robust::Severity::kWarning, "out_of_mesh",
               std::to_string(info.out_of_mesh_gates) +
                   " gate(s) resolved to the nearest mesh triangle");
  return report;
}

ExperimentPipeline::ExperimentPipeline(const ExperimentConfig& config)
    : config_(config) {
  obs::Span span("ssta.pipeline_build");
  netlist_ = std::make_unique<circuit::Netlist>(
      circuit::make_paper_circuit(config.circuit, config.seed));
  placer::PlacerOptions placer_options;
  placer_options.seed = config.seed + 17;
  placement_ = std::make_unique<placer::Placement>(placer::place(
      *netlist_, geometry::BoundingBox::unit_die(), placer_options));
  library_ =
      std::make_unique<timing::CellLibrary>(timing::CellLibrary::default_90nm());
  engine_ =
      std::make_unique<timing::StaEngine>(*netlist_, *placement_, *library_);
  locations_ = placement_->physical_locations(*netlist_);

  const double c = config.kernel_c > 0.0 ? config.kernel_c
                                         : kernels::paper_gaussian_c();
  kernel_ = std::make_unique<kernels::GaussianKernel>(c);
}

McSstaOptions ExperimentPipeline::mc_options() const {
  McSstaOptions options;
  options.num_samples = config_.num_samples;
  // Same base seed for reference and KLE runs: the samplers map their
  // latent draws through different bases, and sharing draws (common random
  // numbers) tightens the e_mu / e_sigma comparison.
  options.seed = config_.seed + 1000;
  options.num_threads = config_.num_threads;
  options.lease_ttl_ms = config_.lease_ttl_ms;
  if (config_.mc_block_size > 0) options.block_size = config_.mc_block_size;
  return options;
}

const McSstaResult& ExperimentPipeline::reference() {
  if (!reference_) {
    obs::Span span("ssta.reference");
    obs::Stopwatch setup;
    const field::CholeskyFieldSampler sampler(*kernel_, locations_);
    reference_setup_seconds_ = setup.seconds();
    const ParameterSamplers samplers{&sampler, &sampler, &sampler, &sampler};
    reference_ = std::make_unique<McSstaResult>(
        run_monte_carlo_ssta(*engine_, samplers, mc_options()));
  }
  return *reference_;
}

double ExperimentPipeline::reference_setup_seconds() {
  reference();
  return reference_setup_seconds_;
}

store::KleArtifactConfig ExperimentPipeline::artifact_config(
    std::size_t num_eigenpairs) const {
  store::KleArtifactConfig config;
  store::describe_kernel(*kernel_, config.kernel_id, config.kernel_params);
  config.die = geometry::BoundingBox::unit_die();
  config.mesh.kind = store::MeshSpec::Kind::kPaperRefined;
  config.mesh.area_fraction = config_.mesh_area_fraction;
  config.mesh.mesher_seed = config_.seed + 7;
  config.quadrature = core::QuadratureRule::kCentroid1;
  config.num_eigenpairs = num_eigenpairs;
  return config;
}

KleRunOutcome ExperimentPipeline::run_kle(const KleRunRequest& request) {
  require((request.mesh != nullptr) != (request.store != nullptr),
          "ExperimentPipeline::run_kle: set exactly one of mesh / store");
  KleRunOutcome outcome;
  outcome.from_store = request.store != nullptr;

  obs::Span span("ssta.run_kle");
  obs::Stopwatch setup;
  auto setup_span = std::make_unique<obs::Span>("ssta.kle_setup");
  std::unique_ptr<field::KleFieldSampler> sampler;
  if (request.store != nullptr) {
    const store::FetchResult fetch = request.store->get_or_compute(
        artifact_config(request.num_eigenpairs), *kernel_);
    sampler = std::make_unique<field::KleFieldSampler>(
        *fetch.artifact, request.r, locations_);
    outcome.source = fetch.source;
    outcome.mesh_triangles = fetch.artifact->mesh().num_triangles();
    if (request.validate) {
      outcome.info.validated = true;
      outcome.info.health = core::check_kle_health(fetch.artifact->kle());
    }
  } else {
    core::KleOptions kle_options;
    kle_options.num_eigenpairs = std::min<std::size_t>(
        request.num_eigenpairs, request.mesh->num_triangles());
    if (request.matrix_free) {
      kle_options.operator_mode = core::OperatorMode::kMatrixFree;
      if (request.aca_tolerance > 0.0)
        kle_options.matfree.aca_tolerance = request.aca_tolerance;
      kle_options.matfree.num_threads = config_.num_threads;
    }
    const core::KleResult kle = core::solve_kle(
        *request.mesh, *kernel_, kle_options, &outcome.info.solve);
    sampler = std::make_unique<field::KleFieldSampler>(kle, request.r,
                                                       locations_);
    outcome.mesh_triangles = request.mesh->num_triangles();
    if (request.validate) {
      outcome.info.validated = true;
      outcome.info.health = core::check_kle_health(kle);
    }
  }
  setup_span.reset();
  outcome.setup_seconds = setup.seconds();
  outcome.info.out_of_mesh_gates = sampler->out_of_mesh_count();

  const ParameterSamplers samplers{sampler.get(), sampler.get(),
                                   sampler.get(), sampler.get()};
  McSstaOptions options = mc_options();
  options.cancelled = request.cancelled;
  if (request.run_id.empty()) {
    outcome.ssta = run_monte_carlo_ssta(*engine_, samplers, options);
    return outcome;
  }

  // Checkpointed path: the run ledger lives next to the artifacts it
  // depends on, under <store root>/mc_runs. The workload key binds the
  // ledger to everything that determines a sample's value, so a resume
  // against a different circuit/kernel/KLE rejects instead of silently
  // folding foreign partials into the statistics.
  require(request.store != nullptr,
          "ExperimentPipeline::run_kle: a checkpointed run (run_id) needs "
          "the artifact-store path — the ledger lives under the store root");
  store::ContentHasher h;
  h.update_string("sckl-mc-workload-v1");
  h.update_string(config_.circuit);
  h.update_u64(config_.seed);
  h.update_u64(request.r);
  h.update_u64(request.num_eigenpairs);
  h.update_double(config_.mesh_area_fraction);
  h.update_double(config_.kernel_c);

  McRunOptions run;
  run.run_id = request.run_id;
  run.resume = request.resume;
  run.ledger_dir = request.store->root() / "mc_runs";
  run.workload_key = h.digest();
  if (config_.mc_lease_blocks > 0) run.lease_blocks = config_.mc_lease_blocks;
  run.share_coordinator = request.share_coordinator;
  run.local_fallback_seconds = request.local_fallback_seconds;
  outcome.checkpointed = true;
  outcome.ssta = run_checkpointed_monte_carlo_ssta(*engine_, samplers, options,
                                                   run, &outcome.mc_run);
  return outcome;
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  ExperimentPipeline pipeline(config);

  ExperimentResult result;
  result.circuit = config.circuit;
  result.num_gates = pipeline.num_gates();
  result.r = config.r;

  const McSstaResult& mc = pipeline.reference();
  result.threads_used = mc.threads_used;
  result.mc_setup_seconds = pipeline.reference_setup_seconds();
  result.mc_run_seconds = mc.sampling_seconds + mc.sta_seconds;
  result.mc_mean = mc.worst_delay.mean();
  result.mc_sigma = mc.worst_delay.stddev();

  KleRunRequest request;
  request.r = config.r;
  request.num_eigenpairs = config.num_eigenpairs != 0
                               ? config.num_eigenpairs
                               : std::max<std::size_t>(2 * config.r, 50);
  request.validate = config.validate_kle || config.strict;
  request.matrix_free = config.matrix_free;
  request.aca_tolerance = config.aca_tolerance;
  request.run_id = config.run_id;
  request.resume = config.resume;

  std::unique_ptr<store::KleArtifactStore> store;
  std::unique_ptr<mesh::TriMesh> mesh;
  if (!config.store_root.empty()) {
    store = std::make_unique<store::KleArtifactStore>(config.store_root);
    request.store = store.get();
  } else {
    mesh = std::make_unique<mesh::TriMesh>(
        mesh::paper_mesh(geometry::BoundingBox::unit_die(),
                         config.mesh_area_fraction, config.seed + 7));
    request.mesh = mesh.get();
  }

  KleRunOutcome outcome = pipeline.run_kle(request);
  result.mesh_triangles = outcome.mesh_triangles;
  if (outcome.from_store) result.kle_source = store::to_string(outcome.source);
  result.kle_setup_seconds = outcome.setup_seconds;
  result.out_of_mesh_gates = outcome.info.out_of_mesh_gates;
  if (outcome.info.solve.fallback)
    result.kle_fallback_reason = outcome.info.solve.fallback_reason;
  if (request.validate) {
    const robust::HealthReport report = fold_kle_health(outcome.info);
    result.health_ok = report.ok();
    result.health_summary = report.to_string();
    if (config.strict) report.throw_if_fatal(robust::Severity::kWarning);
  }
  const McSstaResult& kle = outcome.ssta;
  result.kle_run_seconds = kle.sampling_seconds + kle.sta_seconds;
  result.kle_mean = kle.worst_delay.mean();
  result.kle_sigma = kle.worst_delay.stddev();

  result.e_mu_percent =
      100.0 * std::abs(result.kle_mean - result.mc_mean) / result.mc_mean;
  result.e_sigma_percent =
      100.0 * std::abs(result.kle_sigma - result.mc_sigma) / result.mc_sigma;
  result.speedup = result.mc_run_seconds / std::max(result.kle_run_seconds,
                                                    1e-9);

  result.endpoint_sigma_error.reserve(mc.endpoint.size());
  for (std::size_t e = 0; e < mc.endpoint.size(); ++e) {
    const double reference_sigma = mc.endpoint[e].stddev();
    if (reference_sigma <= 0.0) continue;
    result.endpoint_sigma_error.push_back(
        std::abs(kle.endpoint[e].stddev() - reference_sigma) /
        reference_sigma);
  }
  return result;
}

}  // namespace sckl::ssta
