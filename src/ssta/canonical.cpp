#include "ssta/canonical.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "obs/stopwatch.h"
#include "timing/rc_tree.h"

namespace sckl::ssta {

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double normal_pdf(double x) {
  return std::exp(-0.5 * x * x) / std::sqrt(2.0 * 3.14159265358979323846);
}

CanonicalForm::CanonicalForm(double mean, linalg::Vector sensitivity,
                             double independent)
    : mean_(mean),
      sensitivity_(std::move(sensitivity)),
      independent_(independent) {
  require(independent_ >= 0.0,
          "CanonicalForm: negative independent sigma (" +
              std::to_string(independent_) + ", mean " +
              std::to_string(mean_) + ")");
}

CanonicalForm CanonicalForm::constant(double value, std::size_t basis_size) {
  return CanonicalForm(value, linalg::Vector(basis_size, 0.0), 0.0);
}

double CanonicalForm::variance() const {
  double sum = independent_ * independent_;
  for (double s : sensitivity_) sum += s * s;
  return sum;
}

double CanonicalForm::sigma() const { return std::sqrt(variance()); }

CanonicalForm CanonicalForm::scaled_by(double k) const {
  linalg::Vector s = sensitivity_;
  for (auto& v : s) v *= k;
  return CanonicalForm(mean_ * k, std::move(s),
                       independent_ * std::abs(k));
}

CanonicalForm& CanonicalForm::operator+=(const CanonicalForm& other) {
  require(sensitivity_.size() == other.sensitivity_.size(),
          "CanonicalForm::operator+=: basis mismatch");
  mean_ += other.mean_;
  for (std::size_t i = 0; i < sensitivity_.size(); ++i)
    sensitivity_[i] += other.sensitivity_[i];
  independent_ = std::hypot(independent_, other.independent_);
  return *this;
}

double CanonicalForm::covariance(const CanonicalForm& x,
                                 const CanonicalForm& y) {
  require(x.sensitivity_.size() == y.sensitivity_.size(),
          "CanonicalForm::covariance: basis mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < x.sensitivity_.size(); ++i)
    sum += x.sensitivity_[i] * y.sensitivity_[i];
  return sum;  // independent parts are uncorrelated with everything
}

CanonicalForm CanonicalForm::maximum(const CanonicalForm& x,
                                     const CanonicalForm& y) {
  const double vx = x.variance();
  const double vy = y.variance();
  const double cov = covariance(x, y);
  const double theta2 = std::max(vx + vy - 2.0 * cov, 0.0);
  const double theta = std::sqrt(theta2);

  // Degenerate case: the two forms are (nearly) perfectly tracking; the max
  // is just the one with the larger mean.
  if (theta < 1e-12 * (std::sqrt(vx) + std::sqrt(vy) + 1e-300))
    return x.mean_ >= y.mean_ ? x : y;

  const double alpha = (x.mean_ - y.mean_) / theta;
  const double p = normal_cdf(alpha);       // tightness of x
  const double phi = normal_pdf(alpha);

  const double mean_max =
      x.mean_ * p + y.mean_ * (1.0 - p) + theta * phi;
  const double second_moment =
      (x.mean_ * x.mean_ + vx) * p + (y.mean_ * y.mean_ + vy) * (1.0 - p) +
      (x.mean_ + y.mean_) * theta * phi;
  const double var_max = std::max(second_moment - mean_max * mean_max, 0.0);

  // Tightness-blended sensitivities (Visweswariah), independent part sized
  // so the total variance matches Clark's.
  linalg::Vector s(x.sensitivity_.size());
  double shared = 0.0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    s[i] = p * x.sensitivity_[i] + (1.0 - p) * y.sensitivity_[i];
    shared += s[i] * s[i];
  }
  const double independent = std::sqrt(std::max(var_max - shared, 0.0));
  return CanonicalForm(mean_max, std::move(s), independent);
}

namespace {

using circuit::CellFunction;

// Builds the canonical form of one gate's arc delay: nominal value scaled
// by the linearized rank-one quadratic factor.
//
//   factor(p) = 1 + b^T p + gamma (v^T p)^2
//   E[factor] = 1 + gamma * Var(v^T p)          (p zero-mean normal)
//   dfactor/dxi_i = b_j * G_j(gate, i)          (first order)
//   Var of the quadratic term = 2 gamma^2 Var(v^T p)^2 -> independent part.
//
// Var(v^T p) uses the per-gate reconstruction variance of each parameter,
// sum_i G_j(gate, i)^2 (exact under the truncated KLE).
CanonicalForm arc_delay_form(double nominal, std::size_t physical_gate,
                             const timing::RankOneQuadratic& sens,
                             const ParameterOperators& operators,
                             std::size_t basis_size) {
  linalg::Vector s(basis_size, 0.0);
  std::size_t offset = 0;
  double var_vp = 0.0;
  for (std::size_t j = 0; j < timing::kNumStatParameters; ++j) {
    const linalg::Matrix& g = *operators[j];
    const double* row = g.row_ptr(physical_gate);
    const double b = sens.linear[j];
    const double v = sens.direction[j];
    double param_variance = 0.0;
    for (std::size_t i = 0; i < g.cols(); ++i) {
      s[offset + i] = nominal * b * row[i];
      param_variance += row[i] * row[i];
    }
    var_vp += v * v * param_variance;
    offset += g.cols();
  }
  // Parameters are mutually independent, so Var(v^T p) adds per parameter.
  const double mean = nominal * (1.0 + sens.quadratic * var_vp);
  const double independent =
      nominal * sens.quadratic * std::sqrt(2.0) * var_vp;
  return CanonicalForm(mean, std::move(s), independent);
}

}  // namespace

CanonicalSstaResult run_canonical_ssta(const timing::StaEngine& engine,
                                       const ParameterOperators& operators) {
  const circuit::Netlist& netlist = engine.netlist();
  const std::size_t num_physical = netlist.num_physical_gates();
  std::size_t basis_size = 0;
  for (const auto* op : operators) {
    require(op != nullptr, "run_canonical_ssta: missing operator");
    require(op->rows() == num_physical,
            "run_canonical_ssta: operator gate count mismatch");
    basis_size += op->cols();
  }

  obs::Stopwatch timer;
  // Linearization point: the nominal corner.
  timing::StaTrace nominal;
  engine.run_nominal(&nominal);

  const auto& technology = engine.technology();
  const std::size_t n = netlist.num_gates_total();
  std::vector<CanonicalForm> arrival(
      n, CanonicalForm::constant(0.0, basis_size));
  // Slew deviation per gate output: a zero-nominal canonical form holding
  // the variation of the output slew around nominal.slew[g].
  std::vector<CanonicalForm> slew_dev(
      n, CanonicalForm::constant(0.0, basis_size));

  // Relative finite-difference step for the NLDM slew derivatives.
  constexpr double kFdStep = 0.05;

  for (std::size_t g : engine.levelization().topological_order) {
    const circuit::Gate& gate = netlist.gate(g);
    switch (gate.function) {
      case CellFunction::kInput:
        arrival[g] = CanonicalForm::constant(0.0, basis_size);
        break;
      case CellFunction::kOutput:
        break;
      case CellFunction::kDff: {
        const timing::TimingCell& cell = *engine.cell(g);
        const double load = engine.load_capacitance(g);
        const double d0 = cell.delay.lookup(technology.clock_slew, load);
        arrival[g] = arc_delay_form(d0, engine.physical_index(g),
                                    cell.delay_sensitivity, operators,
                                    basis_size);
        // Output slew varies with the cell's own parameters only (the
        // clock edge is deterministic).
        const double s0 = cell.output_slew.lookup(technology.clock_slew, load);
        CanonicalForm s = arc_delay_form(s0, engine.physical_index(g),
                                         cell.slew_sensitivity, operators,
                                         basis_size);
        s.shift(-s0);
        slew_dev[g] = s;
        break;
      }
      default: {
        const timing::TimingCell& cell = *engine.cell(g);
        const double load = engine.load_capacitance(g);
        CanonicalForm best;
        for (std::size_t k = 0; k < gate.fanin.size(); ++k) {
          const std::size_t u = gate.fanin[k];
          const double wire = engine.edge_elmore(g, k);
          const double upstream_slew = nominal.slew[u];
          const double in_slew0 = std::max(
              technology.min_slew,
              timing::wire_output_slew(upstream_slew, wire));
          // Wire slew chain: d(out)/d(in) of sqrt(in^2 + step^2).
          const double wire_gain =
              in_slew0 > 0.0 ? upstream_slew / in_slew0 : 1.0;
          const CanonicalForm in_slew_dev =
              slew_dev[u].scaled_by(wire_gain);

          // Clamp like the Monte Carlo engine does (its slews are floored
          // at min_slew): lookups outside the characterized grid must never
          // yield non-physical negative values.
          const double d0 =
              std::max(cell.delay.lookup(in_slew0, load), 0.0);
          const double dstep = std::max(kFdStep * in_slew0, 0.5);
          const double ddelay_dslew =
              (std::max(cell.delay.lookup(in_slew0 + dstep, load), 0.0) -
               d0) /
              dstep;

          CanonicalForm candidate = arrival[u];
          candidate.shift(wire);
          candidate += arc_delay_form(d0, engine.physical_index(g),
                                      cell.delay_sensitivity, operators,
                                      basis_size);
          candidate += in_slew_dev.scaled_by(ddelay_dslew);
          if (k == nominal.worst_arc[g] || gate.fanin.size() == 1) {
            // Output slew deviation along the nominal worst arc: the
            // cell's own variation plus the input-slew feed-through.
            const double s0 = std::max(
                cell.output_slew.lookup(in_slew0, load), technology.min_slew);
            const double dslew_dslew =
                (std::max(cell.output_slew.lookup(in_slew0 + dstep, load),
                          technology.min_slew) -
                 s0) /
                dstep;
            CanonicalForm s = arc_delay_form(s0, engine.physical_index(g),
                                             cell.slew_sensitivity,
                                             operators, basis_size);
            s.shift(-s0);
            s += in_slew_dev.scaled_by(dslew_dslew);
            slew_dev[g] = s;
          }
          best = (k == 0) ? candidate
                          : CanonicalForm::maximum(best, candidate);
        }
        arrival[g] = best;
        break;
      }
    }
  }

  CanonicalSstaResult result;
  result.endpoint.reserve(engine.num_endpoints());
  bool first = true;
  for (std::size_t endpoint : engine.endpoints()) {
    const circuit::Gate& gate = netlist.gate(endpoint);
    CanonicalForm value = arrival[gate.fanin[0]];
    value.shift(engine.edge_elmore(endpoint, 0));
    result.endpoint.push_back(value);
    result.worst_delay = first
                             ? value
                             : CanonicalForm::maximum(result.worst_delay,
                                                      value);
    first = false;
  }
  result.seconds = timer.seconds();
  return result;
}

}  // namespace sckl::ssta
