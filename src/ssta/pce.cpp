#include "ssta/pce.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "obs/stopwatch.h"
#include "field/field_sampler.h"
#include "field/lhs.h"
#include "linalg/blas.h"
#include "linalg/cholesky.h"
#include "linalg/gemm.h"

namespace sckl::ssta {
namespace {

constexpr double kSqrt2 = 1.41421356237309514547;

// Basis size for k dims: 1 constant + k linear + k pure quadratic +
// k(k-1)/2 cross terms.
std::size_t basis_size(std::size_t k) { return 1 + 2 * k + k * (k - 1) / 2; }

// Fills one design-matrix row from the selected-dimension values.
void fill_basis_row(const double* xi, std::size_t k, double* row) {
  std::size_t at = 0;
  row[at++] = 1.0;
  for (std::size_t d = 0; d < k; ++d) row[at++] = xi[d];
  for (std::size_t d = 0; d < k; ++d)
    row[at++] = (xi[d] * xi[d] - 1.0) / kSqrt2;  // orthonormal H2
  for (std::size_t d = 0; d < k; ++d)
    for (std::size_t e = d + 1; e < k; ++e) row[at++] = xi[d] * xi[e];
}

}  // namespace

PceModel::PceModel(std::size_t dims, linalg::Vector coefficients,
                   double residual_variance)
    : dims_(dims),
      coefficients_(std::move(coefficients)),
      residual_variance_(std::max(residual_variance, 0.0)) {
  require(coefficients_.size() == basis_size(dims_),
          "PceModel: coefficient count does not match dimension count");
}

std::size_t PceModel::linear_index(std::size_t d) const {
  require(d < dims_, "PceModel::linear_index: out of range");
  return 1 + d;
}

std::size_t PceModel::quadratic_index(std::size_t d) const {
  require(d < dims_, "PceModel::quadratic_index: out of range");
  return 1 + dims_ + d;
}

std::size_t PceModel::cross_index(std::size_t d, std::size_t e) const {
  require(d < e && e < dims_, "PceModel::cross_index: need d < e < dims");
  // Offset of pair (d, e) in the row-major upper-triangle enumeration.
  const std::size_t before =
      d * dims_ - d * (d + 1) / 2;  // pairs with first index < d
  return 1 + 2 * dims_ + before + (e - d - 1);
}

double PceModel::variance() const {
  double sum = residual_variance_;
  for (std::size_t b = 1; b < coefficients_.size(); ++b)
    sum += coefficients_[b] * coefficients_[b];
  return sum;
}

double PceModel::sigma() const { return std::sqrt(variance()); }

double PceModel::main_effect_fraction(std::size_t d) const {
  const double lin = coefficients_[linear_index(d)];
  const double quad = coefficients_[quadratic_index(d)];
  return (lin * lin + quad * quad) / std::max(variance(), 1e-300);
}

double PceModel::interaction_fraction() const {
  double sum = 0.0;
  for (std::size_t d = 0; d < dims_; ++d)
    for (std::size_t e = d + 1; e < dims_; ++e) {
      const double c = coefficients_[cross_index(d, e)];
      sum += c * c;
    }
  return sum / std::max(variance(), 1e-300);
}

double PceModel::evaluate(const linalg::Vector& xi) const {
  require(xi.size() == dims_, "PceModel::evaluate: dimension mismatch");
  std::vector<double> row(coefficients_.size());
  fill_basis_row(xi.data(), dims_, row.data());
  double sum = 0.0;
  for (std::size_t b = 0; b < coefficients_.size(); ++b)
    sum += row[b] * coefficients_[b];
  return sum;
}

PceAnalysis fit_worst_delay_pce(const timing::StaEngine& engine,
                                const ParameterOperators& operators,
                                const PceOptions& options) {
  const std::size_t num_physical = engine.netlist().num_physical_gates();
  std::size_t total_dims = 0;
  for (const auto* op : operators) {
    require(op != nullptr, "fit_worst_delay_pce: missing operator");
    require(op->rows() == num_physical,
            "fit_worst_delay_pce: operator gate count mismatch");
    total_dims += op->cols();
  }

  // Selected dimensions: the leading modes of each parameter (the KLE's
  // eigenvalue ordering makes these the highest-variance spatial modes).
  std::vector<std::pair<std::size_t, std::size_t>> origin;
  std::vector<std::size_t> global_index;  // column in the full xi matrix
  std::size_t offset = 0;
  for (std::size_t j = 0; j < timing::kNumStatParameters; ++j) {
    const std::size_t keep =
        std::min(options.dims_per_parameter, operators[j]->cols());
    for (std::size_t m = 0; m < keep; ++m) {
      origin.emplace_back(j, m);
      global_index.push_back(offset + m);
    }
    offset += operators[j]->cols();
  }
  const std::size_t k = origin.size();
  const std::size_t b = basis_size(k);
  require(options.num_samples >= 2 * b,
          "fit_worst_delay_pce: need at least 2x basis-size samples");

  obs::Stopwatch timer;
  const StreamKey key{options.seed, 0};
  const std::size_t n = options.num_samples;

  // Sample the full latent space once.
  linalg::Matrix xi;
  if (options.use_latin_hypercube) {
    field::latin_hypercube_normal(n, total_dims, key, xi);
  } else {
    field::fill_latent_normals(field::SampleRange{0, n}, key, total_dims, xi);
  }

  // Reconstruct per-parameter gate values: P_j = Xi_j G_j^T.
  std::array<linalg::Matrix, timing::kNumStatParameters> gate_values;
  offset = 0;
  for (std::size_t j = 0; j < timing::kNumStatParameters; ++j) {
    const std::size_t r = operators[j]->cols();
    linalg::Matrix xi_j(n, r);
    for (std::size_t i = 0; i < n; ++i)
      std::copy(xi.row_ptr(i) + offset, xi.row_ptr(i) + offset + r,
                xi_j.row_ptr(i));
    // One transpose per parameter puts the operator in the GEMM-ready
    // latent x locations layout; the product then runs on the blocked
    // SIMD kernels.
    gate_values[j] = linalg::gemm_fast(xi_j, operators[j]->transposed());
    offset += r;
  }

  // Evaluate the timer and build the regression system.
  linalg::Matrix design(n, b);
  linalg::Vector response(n);
  std::vector<double> selected(k);
  for (std::size_t i = 0; i < n; ++i) {
    timing::ParameterView view;
    for (std::size_t j = 0; j < timing::kNumStatParameters; ++j)
      view[j] = gate_values[j].row_ptr(i);
    response[i] = engine.run(view).worst_delay;
    for (std::size_t d = 0; d < k; ++d)
      selected[d] = xi(i, global_index[d]);
    fill_basis_row(selected.data(), k, design.row_ptr(i));
  }

  // Normal equations with jitter (the Hermite design is well conditioned
  // for n >> b, but stratified samples can introduce mild collinearity).
  linalg::Matrix gram = linalg::gram(design);
  linalg::Vector rhs = linalg::gemv_transposed(design, response);
  const auto factor = linalg::cholesky_with_jitter(std::move(gram));
  const linalg::Vector coefficients = factor.factor.solve(rhs);

  // Residual variance (unbiased by the fitted dof).
  double rss = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double fit = 0.0;
    const double* row = design.row_ptr(i);
    for (std::size_t t = 0; t < b; ++t) fit += row[t] * coefficients[t];
    const double diff = response[i] - fit;
    rss += diff * diff;
  }
  const double residual = rss / static_cast<double>(n - b);

  PceAnalysis analysis{PceModel(k, coefficients, residual),
                       std::move(origin), timer.seconds()};
  return analysis;
}

}  // namespace sckl::ssta
