#include "ssta/lease_ledger.h"

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "robust/fault_injection.h"

namespace sckl::ssta {

bool valid_run_id(const std::string& id) {
  if (id.empty() || id.size() > 128) return false;
  for (char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return id != "." && id != "..";
}

void LedgerHeader::encode(std::vector<std::uint8_t>& out) const {
  wire::put_u8(out, kLedgerHeaderTag);
  wire::put_u64(out, workload_key);
  wire::put_u64(out, num_samples);
  wire::put_u64(out, block_size);
  wire::put_u64(out, lease_blocks);
  wire::put_u64(out, seed);
  wire::put_u64(out, sketch_capacity);
  wire::put_u64(out, num_endpoints);
}

LedgerHeader LedgerHeader::decode(wire::ByteReader& r) {
  LedgerHeader h;
  h.workload_key = r.u64();
  h.num_samples = r.u64();
  h.block_size = r.u64();
  h.lease_blocks = r.u64();
  h.seed = r.u64();
  h.sketch_capacity = r.u64();
  h.num_endpoints = r.u64();
  return h;
}

bool LedgerHeader::operator==(const LedgerHeader& other) const {
  return workload_key == other.workload_key &&
         num_samples == other.num_samples && block_size == other.block_size &&
         lease_blocks == other.lease_blocks && seed == other.seed &&
         sketch_capacity == other.sketch_capacity &&
         num_endpoints == other.num_endpoints;
}

LeaseCoordinator::LeaseCoordinator(std::vector<Lease> leases,
                                   store::RecordLog log, double ttl_seconds,
                                   std::size_t num_endpoints,
                                   McRunStats& stats)
    : leases_(std::move(leases)),
      log_(std::move(log)),
      ttl_(std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(ttl_seconds))),
      num_endpoints_(num_endpoints),
      stats_(stats) {}

std::size_t LeaseCoordinator::claim() {
  std::lock_guard<std::mutex> lock(mutex_);
  const Clock::time_point now = Clock::now();
  for (std::size_t l = 0; l < leases_.size(); ++l) {
    Lease& lease = leases_[l];
    if (lease.state == LeaseState::kClaimed && now >= lease.expiry)
      expire_locked(lease);
    if (lease.state == LeaseState::kAvailable) {
      lease.state = LeaseState::kClaimed;
      lease.expiry = now + ttl_;
      lease.owner = 0;
      ++stats_.leases_claimed;
      obs::counter("sckl.ssta.mc.leases_claimed").add(1);
      return l;
    }
  }
  return npos;
}

std::vector<ClaimedLease> LeaseCoordinator::claim_remote(
    std::uint64_t worker, std::size_t max_leases) {
  require(worker != 0, "lease claim: remote worker id must be nonzero");
  std::vector<ClaimedLease> out;
  std::lock_guard<std::mutex> lock(mutex_);
  const Clock::time_point now = Clock::now();
  for (std::size_t l = 0; l < leases_.size() && out.size() < max_leases; ++l) {
    Lease& lease = leases_[l];
    if (lease.state == LeaseState::kClaimed && now >= lease.expiry)
      expire_locked(lease);
    if (lease.state != LeaseState::kAvailable) continue;
    lease.state = LeaseState::kClaimed;
    lease.expiry = now + ttl_;
    lease.owner = worker;
    ++stats_.leases_remote_claimed;
    obs::counter("sckl.ssta.mc.remote.claims").add(1);
    out.push_back({l, lease.first_block, lease.num_blocks});
  }
  if (!out.empty()) bump_activity_locked();
  return out;
}

bool LeaseCoordinator::publish(std::size_t index,
                               const detail::BlockPartial& partial,
                               std::uint64_t parent_span_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  Lease& lease = leases_[index];
  if (lease.state == LeaseState::kComplete) return true;
  if (robust::fault_injected(robust::FaultSite::kMcLeaseExpire) ||
      Clock::now() >= lease.expiry) {
    expire_locked(lease);
    return false;
  }
  commit_locked(lease, partial, parent_span_id);
  bump_activity_locked();
  return true;
}

bool LeaseCoordinator::publish_remote(std::uint64_t worker, std::size_t index,
                                      std::size_t first_block,
                                      std::size_t num_blocks,
                                      const detail::BlockPartial& partial) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (index >= leases_.size())
    throw Error("lease publish: lease index " + std::to_string(index) +
                    " outside the run",
                ErrorCode::kPrecondition);
  Lease& lease = leases_[index];
  if (lease.first_block != first_block || lease.num_blocks != num_blocks)
    throw Error("lease publish: lease geometry mismatch (worker speaks a "
                "different run geometry)",
                ErrorCode::kPrecondition);
  if (partial.endpoint.size() != num_endpoints_)
    throw Error("lease publish: partial endpoint count mismatch",
                ErrorCode::kPrecondition);
  if (lease.state == LeaseState::kComplete) {
    // A slow first claimer finished after its lease was re-issued and
    // completed by someone else: identical bits, silently dedup.
    bump_activity_locked();
    return true;
  }
  if (lease.state != LeaseState::kClaimed) {
    // Reclaimed (or never re-claimed after a coordinator restart): the
    // worker's claim is gone; it must claim again.
    obs::counter("sckl.ssta.mc.remote.rejected").add(1);
    bump_activity_locked();
    return false;
  }
  if (robust::fault_injected(robust::FaultSite::kMcLeaseExpire) ||
      Clock::now() >= lease.expiry) {
    expire_locked(lease);
    obs::counter("sckl.ssta.mc.remote.rejected").add(1);
    bump_activity_locked();
    return false;
  }
  commit_locked(lease, partial, 0);
  ++stats_.leases_remote_published;
  obs::counter("sckl.ssta.mc.remote.published").add(1);
  static_cast<void>(worker);  // ownership deliberately unchecked, see header
  bump_activity_locked();
  return true;
}

std::size_t LeaseCoordinator::heartbeat(std::uint64_t worker) {
  std::lock_guard<std::mutex> lock(mutex_);
  const Clock::time_point now = Clock::now();
  std::size_t extended = 0;
  for (Lease& lease : leases_) {
    if (lease.state != LeaseState::kClaimed || lease.owner != worker) continue;
    if (now >= lease.expiry) continue;  // too late — publish will be refused
    lease.expiry = now + ttl_;
    ++extended;
  }
  obs::counter("sckl.ssta.mc.remote.heartbeats").add(1);
  if (extended > 0) bump_activity_locked();
  return extended;
}

LeaseProgress LeaseCoordinator::progress() const {
  std::lock_guard<std::mutex> lock(mutex_);
  LeaseProgress p;
  p.total = leases_.size();
  for (const Lease& lease : leases_) {
    if (lease.state == LeaseState::kComplete) ++p.complete;
    if (lease.state == LeaseState::kClaimed) ++p.claimed;
  }
  return p;
}

bool LeaseCoordinator::all_complete() const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Lease& lease : leases_)
    if (lease.state != LeaseState::kComplete) return false;
  return true;
}

bool LeaseCoordinator::wait_for_remote_activity(std::uint64_t& last_seen,
                                                double timeout_seconds) {
  std::unique_lock<std::mutex> lock(mutex_);
  const bool changed = activity_cv_.wait_for(
      lock, std::chrono::duration<double>(timeout_seconds),
      [&] { return activity_ != last_seen; });
  last_seen = activity_;
  return changed;
}

std::uint64_t LeaseCoordinator::activity_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return activity_;
}

void LeaseCoordinator::expire_locked(Lease& lease) {
  lease.state = LeaseState::kAvailable;
  lease.owner = 0;
  lease.was_reclaimed = true;
  ++stats_.leases_expired;
  obs::counter("sckl.ssta.mc.leases_expired").add(1);
}

void LeaseCoordinator::commit_locked(Lease& lease,
                                     const detail::BlockPartial& partial,
                                     std::uint64_t parent_span_id) {
  obs::Span append_span("ssta.mc.ledger_append", parent_span_id);
  std::vector<std::uint8_t> payload;
  wire::put_u8(payload, kLedgerLeaseTag);
  wire::put_u64(payload, lease.first_block);
  wire::put_u64(payload, lease.num_blocks);
  partial.encode(payload);
  log_.append(payload);  // durable (or _Exit under mc_ledger_write)
  robust::crash_point(robust::FaultSite::kMcCoordinatorCrash);
  ++stats_.ledger_appends;
  obs::counter("sckl.ssta.mc.ledger_appends").add(1);
  lease.partial = partial;
  lease.state = LeaseState::kComplete;
  if (lease.was_reclaimed) {
    ++stats_.leases_recomputed;
    obs::counter("sckl.ssta.mc.leases_recomputed").add(1);
  }
}

void LeaseCoordinator::bump_activity_locked() {
  ++activity_;
  activity_cv_.notify_all();
}

}  // namespace sckl::ssta
