// Checkpointed, resumable Monte Carlo SSTA (the crash-safe runner).
//
// run_monte_carlo_ssta (mc_ssta.h) already makes every sample a pure
// function of its index, so nothing about a Monte Carlo run is inherently
// lost when the process dies — except the work already done. This runner
// adds exactly that durability: blocks are grouped into fixed *leases*, a
// worker that finishes a lease appends the lease's merged BlockPartial to a
// durable append-only *run ledger* (store/record_log.h, fsync'd per
// record), and a resumed run loads completed leases from the ledger and
// recomputes only the rest. The lease table, state machine, and ledger
// appends live in lease_ledger.h (LeaseCoordinator) so the serve daemon
// can hand the same leases to remote workers.
//
// Resume invariant (ctest-gated by mc_resume_kill_loop): for a fixed
// (workload, num_samples, block_size, lease_blocks, seed, sketch_capacity),
// a run killed at ANY instant and then resumed — any number of times, at
// any thread count — produces bit-identical statistics (mean, M2, min/max,
// every endpoint accumulator, and the full quantile-sketch state) to an
// uninterrupted run. Three properties compose into the guarantee:
//
//   1. Per-lease partials are pure: lease L's partial is the fold, in block
//      order, of its blocks' partials, and each block partial is a pure
//      function of (workload, options, block index). Recomputing a lost
//      lease reproduces the exact bits the dead worker would have written.
//   2. The ledger is crash-safe: records are CRC-framed and fsync'd; a
//      crash mid-append tears at most the tail record, which open()
//      truncates away. Committed leases are never lost or corrupted.
//   3. The final fold nesting is fixed: the result folds lease partials in
//      lease order (NOT block order across leases — Welford merges are not
//      bit-associative, so the nesting itself is part of the contract).
//      Ledger-loaded and freshly computed lease partials are bitwise
//      interchangeable, so any mix folds to the same result.
//
// The same three properties make the DISTRIBUTED extension safe: a remote
// worker that claims a lease over the serve protocol computes the same
// pure partial, and whichever claimer publishes first commits the same
// bits (mc_dist_kill_loop gates this across worker kills, coordinator
// kills, and heartbeat loss). See DESIGN.md §12.
//
// Single-writer discipline: the runner holds an exclusive flock on
// <ledger_dir>/<run_id>.lock for the whole run, so two processes can never
// append to one ledger concurrently — and because flock dies with its
// holder, a kill -9'd run leaves the ledger immediately resumable. Remote
// workers never touch the ledger: their partials travel over RPC and only
// the coordinator appends.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <string>

#include "ssta/lease_ledger.h"
#include "ssta/mc_ssta.h"

namespace sckl::ssta {

/// Options of the checkpointed runner, on top of McSstaOptions (which
/// carries the lease TTL, McSstaOptions::lease_ttl_ms).
struct McRunOptions {
  /// Identifies the run's ledger (file names derive from it). Restricted to
  /// [A-Za-z0-9._-] so it can never escape ledger_dir.
  std::string run_id;

  /// Directory holding <run_id>.ledger and <run_id>.lock; created if
  /// missing. The experiment pipeline uses <store_root>/mc_runs.
  std::filesystem::path ledger_dir;

  /// Blocks per lease — the unit of checkpointing. One ledger append (and
  /// one fsync) per lease, so this trades durability granularity against
  /// I/O. Part of the resume contract: must match across resumes.
  std::size_t lease_blocks = 4;

  /// False: the ledger must not already contain lease records (guards
  /// against silently continuing a run the caller thought was fresh).
  /// True: completed leases are loaded and skipped.
  bool resume = false;

  /// Content hash binding the ledger to its workload (circuit, kernel,
  /// KLE artifact...). A resume against a ledger whose recorded key
  /// differs throws kPrecondition — resuming someone else's samples would
  /// silently corrupt the statistics.
  std::uint64_t workload_key = 0;

  /// Distributed-run hook. When set, the runner becomes a COORDINATOR:
  /// after replaying the ledger it calls the hook with its live
  /// LeaseCoordinator and LedgerHeader (so the serve daemon can register
  /// them for ClaimLeases / PublishPartial / Heartbeat / RunStatus), and
  /// calls it again with (nullptr, nullptr) — before the coordinator is
  /// destroyed — once no further remote publishes may be accepted. Between
  /// the two calls the runner waits for remote progress and degrades
  /// gracefully: whenever no remote activity arrives for
  /// local_fallback_seconds it claims a lease itself and computes it
  /// locally, so a run finishes even if every worker vanishes.
  std::function<void(LeaseCoordinator*, const LedgerHeader*)>
      share_coordinator;

  /// How long the distributed coordinator waits without any remote
  /// activity (claim / publish / heartbeat) before computing a lease
  /// locally. Only used when share_coordinator is set.
  double local_fallback_seconds = 0.5;
};

/// Runs Monte Carlo SSTA with durable lease checkpointing. Same sampler
/// preconditions as run_monte_carlo_ssta; additionally requires a valid
/// run_id/ledger_dir and rejects options.keep_samples (per-sample retention
/// is incompatible with skipping resumed leases). Throws:
///   kPrecondition — run_id invalid, ledger belongs to another workload or
///                   different sampling options, or a fresh (resume=false)
///                   run found an existing ledger with lease records;
///   kOverloaded   — another live process holds the run's lock;
///   kDeadlineExceeded — options.cancelled fired (completed leases stay
///                   durable; resume later picks up from them).
McSstaResult run_checkpointed_monte_carlo_ssta(
    const timing::StaEngine& engine, const ParameterSamplers& samplers,
    const McSstaOptions& options, const McRunOptions& run,
    McRunStats* stats = nullptr);

}  // namespace sckl::ssta
