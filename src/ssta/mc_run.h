// Checkpointed, resumable Monte Carlo SSTA (the crash-safe runner).
//
// run_monte_carlo_ssta (mc_ssta.h) already makes every sample a pure
// function of its index, so nothing about a Monte Carlo run is inherently
// lost when the process dies — except the work already done. This runner
// adds exactly that durability: blocks are grouped into fixed *leases*, a
// worker that finishes a lease appends the lease's merged BlockPartial to a
// durable append-only *run ledger* (store/record_log.h, fsync'd per
// record), and a resumed run loads completed leases from the ledger and
// recomputes only the rest.
//
// Resume invariant (ctest-gated by mc_resume_kill_loop): for a fixed
// (workload, num_samples, block_size, lease_blocks, seed, sketch_capacity),
// a run killed at ANY instant and then resumed — any number of times, at
// any thread count — produces bit-identical statistics (mean, M2, min/max,
// every endpoint accumulator, and the full quantile-sketch state) to an
// uninterrupted run. Three properties compose into the guarantee:
//
//   1. Per-lease partials are pure: lease L's partial is the fold, in block
//      order, of its blocks' partials, and each block partial is a pure
//      function of (workload, options, block index). Recomputing a lost
//      lease reproduces the exact bits the dead worker would have written.
//   2. The ledger is crash-safe: records are CRC-framed and fsync'd; a
//      crash mid-append tears at most the tail record, which open()
//      truncates away. Committed leases are never lost or corrupted.
//   3. The final fold nesting is fixed: the result folds lease partials in
//      lease order (NOT block order across leases — Welford merges are not
//      bit-associative, so the nesting itself is part of the contract).
//      Ledger-loaded and freshly computed lease partials are bitwise
//      interchangeable, so any mix folds to the same result.
//
// Lease state machine (in-memory, rebuilt from the ledger at open):
//
//   Available ──claim──▶ Claimed(expiry) ──publish+complete──▶ Complete
//        ▲                    │
//        └────── expired ─────┘   (deadline passed, or the
//                                  mc_lease_expire fault site fires)
//
// A reclaimed lease is recomputed deterministically; if the original
// claimer completes anyway (it was slow, not dead), the first completion
// wins and the duplicate is discarded — both computed the same bits. On
// replay, duplicate ledger records for one lease (possible across crashed
// generations) dedup by first_block, keeping the first.
//
// Single-writer discipline: the runner holds an exclusive flock on
// <ledger_dir>/<run_id>.lock for the whole run, so two processes can never
// append to one ledger concurrently — and because flock dies with its
// holder, a kill -9'd run leaves the ledger immediately resumable.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>

#include "ssta/mc_ssta.h"

namespace sckl::ssta {

/// Options of the checkpointed runner, on top of McSstaOptions.
struct McRunOptions {
  /// Identifies the run's ledger (file names derive from it). Restricted to
  /// [A-Za-z0-9._-] so it can never escape ledger_dir.
  std::string run_id;

  /// Directory holding <run_id>.ledger and <run_id>.lock; created if
  /// missing. The experiment pipeline uses <store_root>/mc_runs.
  std::filesystem::path ledger_dir;

  /// Blocks per lease — the unit of checkpointing. One ledger append (and
  /// one fsync) per lease, so this trades durability granularity against
  /// I/O. Part of the resume contract: must match across resumes.
  std::size_t lease_blocks = 4;

  /// A claimed lease not completed within this budget is treated as
  /// abandoned and reclaimed for recomputation.
  double lease_timeout_seconds = 300.0;

  /// False: the ledger must not already contain lease records (guards
  /// against silently continuing a run the caller thought was fresh).
  /// True: completed leases are loaded and skipped.
  bool resume = false;

  /// Content hash binding the ledger to its workload (circuit, kernel,
  /// KLE artifact...). A resume against a ledger whose recorded key
  /// differs throws kPrecondition — resuming someone else's samples would
  /// silently corrupt the statistics.
  std::uint64_t workload_key = 0;
};

/// What the checkpointed runner did, for reporting and tests.
struct McRunStats {
  std::size_t leases_total = 0;
  std::size_t leases_resumed = 0;   // loaded complete from the ledger
  std::size_t leases_claimed = 0;   // computed (or recomputed) this run
  std::size_t leases_expired = 0;   // reclaimed from an expired claim
  std::size_t leases_recomputed = 0;  // completions of reclaimed leases
  std::size_t ledger_appends = 0;
  bool recovered_torn_tail = false;  // open() truncated a torn record
};

/// Runs Monte Carlo SSTA with durable lease checkpointing. Same sampler
/// preconditions as run_monte_carlo_ssta; additionally requires a valid
/// run_id/ledger_dir and rejects options.keep_samples (per-sample retention
/// is incompatible with skipping resumed leases). Throws:
///   kPrecondition — run_id invalid, ledger belongs to another workload or
///                   different sampling options, or a fresh (resume=false)
///                   run found an existing ledger with lease records;
///   kOverloaded   — another live process holds the run's lock;
///   kDeadlineExceeded — options.cancelled fired (completed leases stay
///                   durable; resume later picks up from them).
McSstaResult run_checkpointed_monte_carlo_ssta(
    const timing::StaEngine& engine, const ParameterSamplers& samplers,
    const McSstaOptions& options, const McRunOptions& run,
    McRunStats* stats = nullptr);

}  // namespace sckl::ssta
