// End-to-end paper experiments: Table 1 rows and Fig. 6 sweeps.
//
// One call builds the whole pipeline for a circuit: synthesize/parse the
// netlist, place it on the normalized die, build the Gaussian kernel with
// the paper's 2-D linear-cone fit, mesh the die, solve the KLE, construct
// both samplers (Algorithm 1 reference, Algorithm 2 reduced), run the two
// Monte Carlo SSTAs with the *same* timer, and report the Table 1 metrics:
//   e_mu    = |mu_KLE - mu_MC| / mu_MC            (percent)
//   e_sigma = |sigma_KLE - sigma_MC| / sigma_MC   (percent)
//   speedup = t_MC / t_KLE                        (sampling + STA)
// plus the per-endpoint sigma errors that Fig. 6 averages over outputs.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/cli.h"
#include "core/kle_health.h"
#include "core/kle_solver.h"
#include "ssta/mc_run.h"
#include "ssta/mc_ssta.h"
#include "store/artifact_store.h"

namespace sckl::ssta {

/// Configuration of one circuit experiment.
struct ExperimentConfig {
  std::string circuit = "c1908";   // paper circuit name
  std::size_t num_samples = 1000;  // per SSTA run (paper used 100K)
  std::size_t r = 25;              // KLE truncation (paper's choice)
  std::size_t num_eigenpairs = 0;  // computed pairs m; 0 = max(2r, 50)
  double mesh_area_fraction = 0.001;  // paper: max area 0.1% of the die
  double kernel_c = 0.0;           // Gaussian decay; 0 = the paper's 2-D fit
  std::uint64_t seed = 1;
  bool reuse_kle = true;           // share one KLE across the 4 parameters

  /// Worker threads for the Monte Carlo block pipeline: 0 = auto (the
  /// SCKL_THREADS environment variable when set, else hardware
  /// concurrency), 1 = serial, k = exactly k workers. Results are
  /// bit-identical for every value (see ssta/mc_ssta.h).
  std::size_t num_threads = 0;

  /// When non-empty, the KLE is fetched through a KleArtifactStore rooted
  /// here (memory -> disk -> solve) instead of always solving fresh, and
  /// kle_setup_seconds becomes the fetch time. Repeated runs on the same
  /// root skip the eigensolve entirely (the paper's offline/online split).
  std::string store_root;

  /// Run core::check_kle_health on the KLE and report it in the result.
  bool validate_kle = false;
  /// Escalate resilience warnings (solver fallback, out-of-mesh gates,
  /// health findings of kWarning or worse) to a thrown sckl::Error instead
  /// of silently recovering. Implies validate_kle.
  bool strict = false;

  /// Non-empty: the KLE-side Monte Carlo uses the checkpointed runner
  /// (ssta/mc_run.h), keeping a durable run ledger under
  /// <store_root>/mc_runs/<run_id>.ledger. Requires store_root.
  std::string run_id;
  /// Continue a ledger that already holds completed leases (a killed or
  /// cancelled earlier run) instead of rejecting it.
  bool resume = false;

  /// Lease time-to-live for checkpointed runs (--lease-ttl). A claimed
  /// lease not completed or heartbeat-extended within this budget is
  /// reclaimed and recomputed deterministically.
  std::uint64_t lease_ttl_ms = 300'000;
  /// Checkpointing geometry: samples per block and blocks per lease for
  /// the checkpointed runner (0 = keep the McSstaOptions/McRunOptions
  /// defaults, 256 and 4). Both are part of the ledger header, so they
  /// must match across resumes.
  std::size_t mc_block_size = 0;
  std::size_t mc_lease_blocks = 0;

  /// Solve the KLE matrix-free (--matrix-free): Lanczos on the hierarchical
  /// ACA-compressed operator rather than the assembled dense matrix. Only
  /// affects the fresh-solve path (store fetches reuse whatever the artifact
  /// was solved with). See core::OperatorMode::kMatrixFree.
  bool matrix_free = false;
  /// Relative ACA block tolerance when matrix_free is set (--aca-tol);
  /// 0 = the core::MatfreeOptions default.
  double aca_tolerance = 0.0;
};

/// Maps the shared command-line flag vocabulary (sckl::ExperimentFlagSet,
/// parsed in common/cli) onto an ExperimentConfig. Lives in the ssta layer
/// because common cannot depend on ssta types. Fields without a flag
/// (mesh_area_fraction, kernel_c, ...) keep the values already in `config`.
void add_experiment_flags(const CliFlags& flags, ExperimentConfig& config);

/// Everything the benches report about one circuit.
struct ExperimentResult {
  std::string circuit;
  std::size_t num_gates = 0;   // N_g
  std::size_t mesh_triangles = 0;  // n
  std::size_t r = 0;
  std::size_t threads_used = 0;  // resolved Monte Carlo worker count

  double mc_mean = 0.0;
  double mc_sigma = 0.0;
  double kle_mean = 0.0;
  double kle_sigma = 0.0;
  double e_mu_percent = 0.0;
  double e_sigma_percent = 0.0;
  double speedup = 0.0;  // (sampling+STA) time ratio MC / KLE

  double mc_setup_seconds = 0.0;   // Cholesky factorization
  double kle_setup_seconds = 0.0;  // KLE solve — or store fetch — time
  std::string kle_source;          // "", or store provenance: solved/disk/memory
  double mc_run_seconds = 0.0;
  double kle_run_seconds = 0.0;

  /// Resilience telemetry: non-empty when the Lanczos -> dense fallback
  /// fired during the KLE solve.
  std::string kle_fallback_reason;
  /// Gates outside every mesh triangle, resolved to the nearest one.
  std::size_t out_of_mesh_gates = 0;
  /// Health validation (filled when validate_kle/strict was set).
  bool health_ok = true;
  std::string health_summary;

  /// Per-endpoint sigma relative errors (fraction, not percent), for the
  /// Fig. 6 "error averaged across all outputs" metric.
  std::vector<double> endpoint_sigma_error;

  /// Mean of endpoint_sigma_error (the Fig. 6 y-axis).
  double mean_endpoint_sigma_error() const;
};

/// Runs the full comparison for one circuit. With config.strict set, throws
/// sckl::Error (code kHealthCheckFailed) when the KLE needed a fallback or
/// fails health validation instead of recovering silently.
ExperimentResult run_experiment(const ExperimentConfig& config);

/// Resilience telemetry of one pipeline KLE run.
struct KleRunInfo {
  core::KleSolveInfo solve;            // fresh-solve path only
  std::size_t out_of_mesh_gates = 0;   // gates resolved to nearest triangle
  bool validated = false;              // health report below was computed
  robust::HealthReport health;
};

/// Folds the pipeline-level recoveries of one KLE run (solver fallback,
/// out-of-mesh gates) into its health report, so one artifact carries the
/// whole resilience story and strict mode can escalate all of it at once.
robust::HealthReport fold_kle_health(const KleRunInfo& info);

/// What to run for one Algorithm 2 (reduced-dimension) SSTA pass. Exactly
/// one KLE provenance must be set: a mesh to solve fresh on, or an artifact
/// store to fetch through (solving only on a cold miss).
struct KleRunRequest {
  std::size_t r = 25;              // KLE truncation
  std::size_t num_eigenpairs = 50; // computed pairs m (clamped to the mesh)
  const mesh::TriMesh* mesh = nullptr;       // fresh-solve path
  store::KleArtifactStore* store = nullptr;  // store-fetch path
  /// Fresh-solve path only: solve matrix-free (see ExperimentConfig).
  bool matrix_free = false;
  double aca_tolerance = 0.0;  // 0 = core::MatfreeOptions default
  /// Additionally run core::check_kle_health into the outcome's info.
  bool validate = false;
  /// Forwarded to McSstaOptions::cancelled: polled between Monte Carlo
  /// block claims; a true return aborts the run with kDeadlineExceeded.
  /// Empty = never cancelled. Must be thread-safe.
  std::function<bool()> cancelled;
  /// Non-empty: run the Monte Carlo through the checkpointed runner with
  /// this run id (requires the store path — the ledger lives under
  /// <store root>/mc_runs). See ExperimentConfig::run_id.
  std::string run_id;
  bool resume = false;
  /// Forwarded to McRunOptions::share_coordinator (checkpointed runs
  /// only): turns the run into a distributed coordinator whose lease
  /// table is served to remote workers. See ssta/mc_run.h.
  std::function<void(LeaseCoordinator*, const LedgerHeader*)>
      share_coordinator;
  /// Forwarded to McRunOptions::local_fallback_seconds.
  double local_fallback_seconds = 0.5;
};

/// Statistics + provenance + telemetry of one Algorithm 2 run.
struct KleRunOutcome {
  McSstaResult ssta;            // the Monte Carlo statistics
  double setup_seconds = 0.0;   // KLE solve — or store fetch — wall time
  bool from_store = false;      // request went through the artifact store
  store::FetchSource source = store::FetchSource::kSolved;  // store path only
  std::size_t mesh_triangles = 0;  // n of the KLE actually used
  KleRunInfo info;              // fallback / out-of-mesh / health telemetry
  bool checkpointed = false;    // ran through the durable-ledger runner
  McRunStats mc_run;            // lease/ledger telemetry (checkpointed only)
};

/// Reusable pieces for sweep benches (Fig. 6 varies r and n on one circuit
/// without rebuilding the netlist/placement/reference run each time).
class ExperimentPipeline {
 public:
  explicit ExperimentPipeline(const ExperimentConfig& config);

  const timing::StaEngine& engine() const { return *engine_; }
  const placer::Placement& placement() const { return *placement_; }
  const std::vector<geometry::Point2>& gate_locations() const {
    return locations_;
  }
  const kernels::CovarianceKernel& kernel() const { return *kernel_; }
  std::size_t num_gates() const { return locations_.size(); }

  /// Reference (Algorithm 1) statistics; computed once, cached.
  const McSstaResult& reference();
  double reference_setup_seconds();

  /// Runs Algorithm 2 with the KLE described by the request (fresh solve on
  /// request.mesh, or fetched through request.store).
  KleRunOutcome run_kle(const KleRunRequest& request);

  /// The artifact configuration this pipeline's KLE is keyed under (paper
  /// mesh on the unit die, this pipeline's kernel, centroid quadrature).
  store::KleArtifactConfig artifact_config(std::size_t num_eigenpairs) const;

  const ExperimentConfig& config() const { return config_; }

 private:
  McSstaOptions mc_options() const;

  ExperimentConfig config_;
  std::unique_ptr<circuit::Netlist> netlist_;
  std::unique_ptr<placer::Placement> placement_;
  std::unique_ptr<timing::CellLibrary> library_;
  std::unique_ptr<timing::StaEngine> engine_;
  std::vector<geometry::Point2> locations_;
  std::unique_ptr<kernels::CovarianceKernel> kernel_;
  std::unique_ptr<McSstaResult> reference_;
  double reference_setup_seconds_ = 0.0;
};

}  // namespace sckl::ssta
