// Timing yield: P(circuit delay <= T).
//
// The quantity a designer actually signs off on. Two estimators:
//  - empirical, from retained Monte Carlo worst-delay samples;
//  - parametric, from the canonical SSTA's normal worst-delay form
//    (yield(T) = Phi((T - mean)/sigma)).
// The yield bench sweeps T across the distribution and compares the two —
// agreement in the body and mild divergence in the tails (the max of
// normals is right-skewed, which the canonical normal cannot represent) is
// the expected picture.
#pragma once

#include <vector>

#include "ssta/canonical.h"

namespace sckl::ssta {

/// One point of a yield curve.
struct YieldPoint {
  double period = 0.0;  // T (ps)
  double yield = 0.0;   // P(delay <= T)
};

/// Empirical yield at one period from Monte Carlo samples.
double empirical_yield(const std::vector<double>& worst_delay_samples,
                       double period);

/// Empirical yield curve over `points` periods spanning
/// [min sample - margin, max sample + margin].
std::vector<YieldPoint> empirical_yield_curve(
    const std::vector<double>& worst_delay_samples, std::size_t points);

/// Parametric (normal) yield from a canonical worst-delay form.
double canonical_yield(const CanonicalForm& worst_delay, double period);

/// Parametric yield curve over the same period grid as an empirical curve
/// (convenience for side-by-side bench output).
std::vector<YieldPoint> canonical_yield_curve(
    const CanonicalForm& worst_delay,
    const std::vector<YieldPoint>& period_grid);

/// The period achieving a target yield under the canonical model (the
/// "statistical sign-off corner"): mean + z(yield) * sigma.
double canonical_period_for_yield(const CanonicalForm& worst_delay,
                                  double target_yield);

}  // namespace sckl::ssta
