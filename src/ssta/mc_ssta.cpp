#include "ssta/mc_ssta.h"

#include <algorithm>
#include <atomic>

#include "common/error.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/stopwatch.h"
#include "obs/trace.h"

namespace sckl::ssta {

namespace detail {

void BlockPartial::merge(const BlockPartial& other) {
  worst_delay.merge(other.worst_delay);
  worst_delay_sketch.merge(other.worst_delay_sketch);
  if (endpoint.size() < other.endpoint.size())
    endpoint.resize(other.endpoint.size());
  for (std::size_t e = 0; e < other.endpoint.size(); ++e)
    endpoint[e].merge(other.endpoint[e]);
  sampling_seconds += other.sampling_seconds;
  sta_seconds += other.sta_seconds;
}

void BlockPartial::encode(std::vector<std::uint8_t>& out) const {
  worst_delay.encode(out);
  worst_delay_sketch.encode(out);
  wire::put_u64(out, endpoint.size());
  for (const RunningStats& stats : endpoint) stats.encode(out);
  wire::put_f64(out, sampling_seconds);
  wire::put_f64(out, sta_seconds);
}

BlockPartial BlockPartial::decode(wire::ByteReader& r) {
  BlockPartial partial;
  partial.worst_delay = RunningStats::decode(r);
  partial.worst_delay_sketch = QuantileSketch::decode(r);
  const std::uint64_t num_endpoints = r.u64();
  r.need_count(num_endpoints, 5 * 8, "BlockPartial endpoint stats");
  partial.endpoint.reserve(static_cast<std::size_t>(num_endpoints));
  for (std::uint64_t e = 0; e < num_endpoints; ++e)
    partial.endpoint.push_back(RunningStats::decode(r));
  partial.sampling_seconds = r.f64();
  partial.sta_seconds = r.f64();
  return partial;
}

bool BlockPartial::state_equals(const BlockPartial& other) const {
  if (!worst_delay.state_equals(other.worst_delay)) return false;
  if (!worst_delay_sketch.state_equals(other.worst_delay_sketch)) return false;
  if (endpoint.size() != other.endpoint.size()) return false;
  for (std::size_t e = 0; e < endpoint.size(); ++e)
    if (!endpoint[e].state_equals(other.endpoint[e])) return false;
  return true;
}

void compute_block_partial(const timing::StaEngine& engine,
                           const ParameterSamplers& samplers,
                           const McSstaOptions& options,
                           std::size_t block_index,
                           std::size_t num_endpoints, BlockScratch& scratch,
                           BlockPartial& partial,
                           std::vector<double>* samples_out) {
  const std::uint64_t first =
      static_cast<std::uint64_t>(block_index) * options.block_size;
  const std::size_t n =
      std::min<std::size_t>(options.block_size, options.num_samples - first);
  partial.worst_delay_sketch = QuantileSketch(options.sketch_capacity);
  partial.endpoint.resize(num_endpoints);

  obs::Stopwatch sampling;
  const field::SampleRange range{first, n};
  for (std::size_t j = 0; j < timing::kNumStatParameters; ++j) {
    // Staged sampling: one latent fill plus one GEMM per parameter, with
    // the latent scratch shared across parameters (each parameter's draws
    // come from its own StreamKey, so reuse is just allocation reuse).
    samplers[j]->latent_block(range, StreamKey{options.seed, j},
                              scratch.latents);
    samplers[j]->reconstruct(scratch.latents, scratch.blocks[j]);
  }
  partial.sampling_seconds = sampling.seconds();

  obs::Stopwatch sta;
  for (std::size_t i = 0; i < n; ++i) {
    timing::ParameterView view;
    for (std::size_t j = 0; j < timing::kNumStatParameters; ++j)
      view[j] = scratch.blocks[j].row_ptr(i);
    const timing::StaResult timing_result = engine.run(view);
    partial.worst_delay.add(timing_result.worst_delay);
    partial.worst_delay_sketch.add(timing_result.worst_delay);
    if (samples_out != nullptr)
      (*samples_out)[first + i] = timing_result.worst_delay;
    for (std::size_t e = 0; e < timing_result.endpoint_arrival.size(); ++e)
      partial.endpoint[e].add(timing_result.endpoint_arrival[e]);
  }
  partial.sta_seconds = sta.seconds();
}

}  // namespace detail

McSstaResult run_monte_carlo_ssta(const timing::StaEngine& engine,
                                  const ParameterSamplers& samplers,
                                  const McSstaOptions& options) {
  require(options.num_samples > 0, "run_monte_carlo_ssta: no samples");
  require(options.block_size > 0, "run_monte_carlo_ssta: empty block");
  const std::size_t num_gates =
      engine.netlist().num_physical_gates();
  for (const auto* sampler : samplers) {
    require(sampler != nullptr, "run_monte_carlo_ssta: missing sampler");
    require(sampler->num_locations() == num_gates,
            "run_monte_carlo_ssta: sampler/netlist gate count mismatch");
  }

  obs::Span mc_span("ssta.mc");
  obs::counter("sckl.ssta.mc.runs").add(1);
  obs::Stopwatch total;
  const std::size_t num_blocks = detail::num_blocks_for(options);
  const std::size_t num_threads = std::min(
      ThreadPool::resolve_num_threads(options.num_threads), num_blocks);

  McSstaResult result;
  result.worst_delay_sketch = QuantileSketch(options.sketch_capacity);
  result.threads_used = num_threads;
  const std::size_t num_endpoints = engine.num_endpoints();
  std::vector<detail::BlockPartial> partials(num_blocks);
  if (options.keep_samples)
    result.worst_delay_samples.assign(options.num_samples, 0.0);

  // Work-stealing block pipeline: workers claim the next unprocessed block
  // off the shared counter, so a slow block (cache miss, scheduler hiccup)
  // never stalls the others. Each worker owns its scratch matrices; the
  // StaEngine is const and allocation-local, so one engine serves all
  // workers. Writes are disjoint: block b's partial and its sample range.
  std::atomic<std::size_t> next_block{0};
  // Pool workers run on their own threads, so the implicit thread-local
  // parenting cannot see `mc_span`; capture its id and parent each worker's
  // span under it explicitly. The steal-latency histogram measures the time
  // a worker spends claiming its next block off the shared counter.
  const std::uint64_t mc_span_id = obs::Span::current_id();
  static obs::Counter& blocks_claimed = obs::counter("sckl.ssta.mc.blocks");
  static obs::Histogram& steal_ns = obs::histogram("sckl.ssta.mc.steal_ns");
  static obs::Histogram& busy_us = obs::histogram("sckl.ssta.mc.worker_busy_us");
  std::atomic<bool> was_cancelled{false};
  const auto worker = [&](std::size_t /*worker_index*/) {
    obs::Span worker_span("ssta.mc.worker", mc_span_id);
    obs::Stopwatch busy;
    detail::BlockScratch scratch;
    for (;;) {
      // Cancellation is polled once per block claim: the already-claimed
      // block always completes, so a cancelled run still leaves `partials`
      // internally consistent (it is discarded by the throw below anyway).
      if (options.cancelled && options.cancelled()) {
        was_cancelled.store(true, std::memory_order_relaxed);
        break;
      }
      obs::Stopwatch steal;
      const std::size_t b = next_block.fetch_add(1);
      if (obs::trace_enabled()) steal_ns.record(steal.seconds() * 1e9);
      if (b >= num_blocks) break;
      blocks_claimed.add(1);
      detail::compute_block_partial(
          engine, samplers, options, b, num_endpoints, scratch, partials[b],
          options.keep_samples ? &result.worst_delay_samples : nullptr);
    }
    if (obs::trace_enabled()) busy_us.record(busy.seconds() * 1e6);
  };

  if (num_threads == 1) {
    worker(0);
  } else {
    ThreadPool pool(num_threads);
    pool.run(worker);
  }
  if (was_cancelled.load(std::memory_order_relaxed))
    throw Error("run_monte_carlo_ssta: cancelled before completion",
                ErrorCode::kDeadlineExceeded);

  // Ordered merge: block 0, 1, 2, ... regardless of which worker produced
  // which block, so mean/sigma/sketch are bit-identical for every thread
  // count.
  result.endpoint.resize(num_endpoints);
  for (const detail::BlockPartial& partial : partials) {
    result.worst_delay.merge(partial.worst_delay);
    result.worst_delay_sketch.merge(partial.worst_delay_sketch);
    for (std::size_t e = 0; e < num_endpoints; ++e)
      result.endpoint[e].merge(partial.endpoint[e]);
    result.sampling_seconds += partial.sampling_seconds;
    result.sta_seconds += partial.sta_seconds;
  }
  result.total_seconds = total.seconds();
  return result;
}

}  // namespace sckl::ssta
