#include "ssta/mc_ssta.h"

#include <algorithm>

#include "common/error.h"
#include "common/rng.h"
#include "common/stopwatch.h"

namespace sckl::ssta {

McSstaResult run_monte_carlo_ssta(const timing::StaEngine& engine,
                                  const ParameterSamplers& samplers,
                                  const McSstaOptions& options) {
  require(options.num_samples > 0, "run_monte_carlo_ssta: no samples");
  require(options.block_size > 0, "run_monte_carlo_ssta: empty block");
  const std::size_t num_gates =
      engine.netlist().num_physical_gates();
  for (const auto* sampler : samplers) {
    require(sampler != nullptr, "run_monte_carlo_ssta: missing sampler");
    require(sampler->num_locations() == num_gates,
            "run_monte_carlo_ssta: sampler/netlist gate count mismatch");
  }

  McSstaResult result;
  result.endpoint.resize(engine.num_endpoints());

  Stopwatch total;
  Rng master(options.seed);
  std::array<Rng, timing::kNumStatParameters> streams = {
      master.split(), master.split(), master.split(), master.split()};

  std::array<linalg::Matrix, timing::kNumStatParameters> blocks;
  std::size_t remaining = options.num_samples;
  while (remaining > 0) {
    const std::size_t n = std::min(options.block_size, remaining);
    remaining -= n;

    Stopwatch sampling;
    for (std::size_t j = 0; j < timing::kNumStatParameters; ++j)
      samplers[j]->sample_block(n, streams[j], blocks[j]);
    result.sampling_seconds += sampling.seconds();

    Stopwatch sta;
    for (std::size_t i = 0; i < n; ++i) {
      timing::ParameterView view;
      for (std::size_t j = 0; j < timing::kNumStatParameters; ++j)
        view[j] = blocks[j].row_ptr(i);
      const timing::StaResult timing_result = engine.run(view);
      result.worst_delay.add(timing_result.worst_delay);
      if (options.keep_samples)
        result.worst_delay_samples.push_back(timing_result.worst_delay);
      for (std::size_t e = 0; e < timing_result.endpoint_arrival.size(); ++e)
        result.endpoint[e].add(timing_result.endpoint_arrival[e]);
    }
    result.sta_seconds += sta.seconds();
  }
  result.total_seconds = total.seconds();
  return result;
}

}  // namespace sckl::ssta
