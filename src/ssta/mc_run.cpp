#include "ssta/mc_run.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>

#include "common/error.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/stopwatch.h"
#include "obs/trace.h"
#include "robust/fault_injection.h"
#include "store/file_lock.h"
#include "store/record_log.h"

namespace sckl::ssta {
namespace {

using Clock = std::chrono::steady_clock;

constexpr std::uint8_t kHeaderTag = 1;
constexpr std::uint8_t kLeaseTag = 2;

bool valid_run_id(const std::string& id) {
  if (id.empty() || id.size() > 128) return false;
  for (char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return id != "." && id != "..";
}

/// The sampling-geometry fields a ledger is bound to. Everything here must
/// match between the run that wrote a ledger and the run resuming it —
/// sample indices, block boundaries, and the fold nesting all derive from
/// these values.
struct LedgerHeader {
  std::uint64_t workload_key = 0;
  std::uint64_t num_samples = 0;
  std::uint64_t block_size = 0;
  std::uint64_t lease_blocks = 0;
  std::uint64_t seed = 0;
  std::uint64_t sketch_capacity = 0;
  std::uint64_t num_endpoints = 0;

  void encode(std::vector<std::uint8_t>& out) const {
    wire::put_u8(out, kHeaderTag);
    wire::put_u64(out, workload_key);
    wire::put_u64(out, num_samples);
    wire::put_u64(out, block_size);
    wire::put_u64(out, lease_blocks);
    wire::put_u64(out, seed);
    wire::put_u64(out, sketch_capacity);
    wire::put_u64(out, num_endpoints);
  }

  static LedgerHeader decode(wire::ByteReader& r) {  // tag already consumed
    LedgerHeader h;
    h.workload_key = r.u64();
    h.num_samples = r.u64();
    h.block_size = r.u64();
    h.lease_blocks = r.u64();
    h.seed = r.u64();
    h.sketch_capacity = r.u64();
    h.num_endpoints = r.u64();
    return h;
  }

  bool operator==(const LedgerHeader& other) const {
    return workload_key == other.workload_key &&
           num_samples == other.num_samples &&
           block_size == other.block_size &&
           lease_blocks == other.lease_blocks && seed == other.seed &&
           sketch_capacity == other.sketch_capacity &&
           num_endpoints == other.num_endpoints;
  }
};

enum class LeaseState { kAvailable, kClaimed, kComplete };

struct Lease {
  std::size_t first_block = 0;
  std::size_t num_blocks = 0;
  LeaseState state = LeaseState::kAvailable;
  Clock::time_point expiry{};
  bool was_reclaimed = false;        // a prior claim on it expired
  detail::BlockPartial partial;      // valid once kComplete
};

/// Tracks lease states and owns the ledger appends. One mutex covers the
/// lease table, the ledger, and the stats — publishing a lease is a single
/// critical section, so the ledger order always matches completion order.
class LeaseCoordinator {
 public:
  LeaseCoordinator(std::vector<Lease> leases, store::RecordLog log,
                   double timeout_seconds, McRunStats& stats)
      : leases_(std::move(leases)),
        log_(std::move(log)),
        timeout_(std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(timeout_seconds))),
        stats_(stats) {}

  /// Claims the next available lease (reclaiming any time-expired claim on
  /// the way); returns its index or npos when nothing remains claimable.
  std::size_t claim() {
    std::lock_guard<std::mutex> lock(mutex_);
    const Clock::time_point now = Clock::now();
    for (std::size_t l = 0; l < leases_.size(); ++l) {
      Lease& lease = leases_[l];
      if (lease.state == LeaseState::kClaimed && now >= lease.expiry)
        expire_locked(lease);
      if (lease.state == LeaseState::kAvailable) {
        lease.state = LeaseState::kClaimed;
        lease.expiry = now + timeout_;
        ++stats_.leases_claimed;
        obs::counter("sckl.ssta.mc.leases_claimed").add(1);
        return l;
      }
    }
    return npos;
  }

  /// Publishes a finished lease: appends its record durably, then marks it
  /// complete. Returns false when the claim had expired (deadline passed,
  /// or the mc_lease_expire fault fired) — the lease goes back to
  /// Available and the completion is discarded, exactly what happens to a
  /// worker whose lease a coordinator already gave away. A lease someone
  /// else already completed is silently discarded too (same bits).
  bool publish(std::size_t index, const detail::BlockPartial& partial,
               std::uint64_t parent_span_id) {
    std::lock_guard<std::mutex> lock(mutex_);
    Lease& lease = leases_[index];
    if (lease.state == LeaseState::kComplete) return true;
    if (robust::fault_injected(robust::FaultSite::kMcLeaseExpire) ||
        Clock::now() >= lease.expiry) {
      expire_locked(lease);
      return false;
    }
    obs::Span append_span("ssta.mc.ledger_append", parent_span_id);
    std::vector<std::uint8_t> payload;
    wire::put_u8(payload, kLeaseTag);
    wire::put_u64(payload, lease.first_block);
    wire::put_u64(payload, lease.num_blocks);
    partial.encode(payload);
    log_.append(payload);  // durable (or _Exit under mc_ledger_write)
    ++stats_.ledger_appends;
    obs::counter("sckl.ssta.mc.ledger_appends").add(1);
    lease.partial = partial;
    lease.state = LeaseState::kComplete;
    if (lease.was_reclaimed) {
      ++stats_.leases_recomputed;
      obs::counter("sckl.ssta.mc.leases_recomputed").add(1);
    }
    return true;
  }

  const std::vector<Lease>& leases() const { return leases_; }

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  void expire_locked(Lease& lease) {
    lease.state = LeaseState::kAvailable;
    lease.was_reclaimed = true;
    ++stats_.leases_expired;
    obs::counter("sckl.ssta.mc.leases_expired").add(1);
  }

  std::mutex mutex_;
  std::vector<Lease> leases_;
  store::RecordLog log_;
  Clock::duration timeout_;
  McRunStats& stats_;
};

}  // namespace

McSstaResult run_checkpointed_monte_carlo_ssta(
    const timing::StaEngine& engine, const ParameterSamplers& samplers,
    const McSstaOptions& options, const McRunOptions& run,
    McRunStats* stats_out) {
  require(options.num_samples > 0, "checkpointed mc: no samples");
  require(options.block_size > 0, "checkpointed mc: empty block");
  require(!options.keep_samples,
          "checkpointed mc: keep_samples is not supported (resumed leases "
          "do not retain per-sample delays)");
  require(valid_run_id(run.run_id),
          "checkpointed mc: run_id must be non-empty [A-Za-z0-9._-]");
  require(!run.ledger_dir.empty(), "checkpointed mc: ledger_dir is required");
  require(run.lease_blocks > 0, "checkpointed mc: lease_blocks must be > 0");
  const std::size_t num_gates = engine.netlist().num_physical_gates();
  for (const auto* sampler : samplers) {
    require(sampler != nullptr, "checkpointed mc: missing sampler");
    require(sampler->num_locations() == num_gates,
            "checkpointed mc: sampler/netlist gate count mismatch");
  }

  obs::Span mc_span("ssta.mc.checkpointed");
  obs::counter("sckl.ssta.mc.checkpointed_runs").add(1);
  obs::Stopwatch total;

  std::filesystem::create_directories(run.ledger_dir);
  std::optional<store::FileLock> lock = store::FileLock::try_acquire(
      run.ledger_dir / (run.run_id + ".lock"), store::FileLock::Mode::kExclusive);
  if (!lock.has_value())
    throw Error("checkpointed mc: run '" + run.run_id +
                    "' is locked by another live process",
                ErrorCode::kOverloaded);

  store::RecordLog log =
      store::RecordLog::open(run.ledger_dir / (run.run_id + ".ledger"));
  log.set_crash_site(robust::FaultSite::kMcLedgerWrite);

  McRunStats stats;
  stats.recovered_torn_tail = log.recovered_torn_tail();

  const std::size_t num_blocks = detail::num_blocks_for(options);
  const std::size_t num_leases =
      (num_blocks + run.lease_blocks - 1) / run.lease_blocks;
  const std::size_t num_endpoints = engine.num_endpoints();
  stats.leases_total = num_leases;

  const LedgerHeader header{run.workload_key, options.num_samples,
                            options.block_size, run.lease_blocks, options.seed,
                            options.sketch_capacity, num_endpoints};

  // Replay the ledger: validate the header binds this exact workload and
  // geometry, then collect completed leases (first record per lease wins —
  // later duplicates are identical bits from a slow pre-crash claimer).
  std::vector<Lease> leases(num_leases);
  for (std::size_t l = 0; l < num_leases; ++l) {
    leases[l].first_block = l * run.lease_blocks;
    leases[l].num_blocks =
        std::min(run.lease_blocks, num_blocks - leases[l].first_block);
  }
  const auto& records = log.records();
  if (records.empty()) {
    std::vector<std::uint8_t> payload;
    header.encode(payload);
    log.append(payload);
    ++stats.ledger_appends;
    obs::counter("sckl.ssta.mc.ledger_appends").add(1);
  } else {
    // ByteReader raises kCorruptArtifact on any truncated field — a CRC'd
    // record that fails to decode is a writer bug, not a torn write.
    wire::ByteReader first(records[0].data(), records[0].size(),
                           ErrorCode::kCorruptArtifact, "mc run ledger");
    if (first.u8() != kHeaderTag)
      throw Error("checkpointed mc: ledger does not start with a header",
                  ErrorCode::kCorruptArtifact);
    const LedgerHeader on_disk = LedgerHeader::decode(first);
    if (!(on_disk == header))
      throw Error(
          "checkpointed mc: ledger '" + run.run_id +
              "' was written for a different workload or sampling "
              "geometry (workload_key / num_samples / block_size / "
              "lease_blocks / seed / sketch_capacity must all match)",
          ErrorCode::kPrecondition);
    for (std::size_t i = 1; i < records.size(); ++i) {
      wire::ByteReader r(records[i].data(), records[i].size(),
                         ErrorCode::kCorruptArtifact, "mc run ledger");
      if (r.u8() != kLeaseTag)
        throw Error("checkpointed mc: unexpected ledger record tag",
                    ErrorCode::kCorruptArtifact);
      const std::uint64_t first_block = r.u64();
      const std::uint64_t lease_blocks = r.u64();
      if (first_block % run.lease_blocks != 0 ||
          first_block / run.lease_blocks >= num_leases)
        throw Error("checkpointed mc: lease record outside the run",
                    ErrorCode::kCorruptArtifact);
      Lease& lease = leases[first_block / run.lease_blocks];
      if (lease_blocks != lease.num_blocks)
        throw Error("checkpointed mc: lease record geometry mismatch",
                    ErrorCode::kCorruptArtifact);
      if (lease.state == LeaseState::kComplete) continue;  // dedup
      lease.partial = detail::BlockPartial::decode(r);
      lease.state = LeaseState::kComplete;
    }
    std::size_t complete = 0;
    for (const Lease& lease : leases)
      if (lease.state == LeaseState::kComplete) ++complete;
    if (!run.resume && complete > 0)
      throw Error("checkpointed mc: ledger for run '" + run.run_id +
                      "' already holds " + std::to_string(complete) +
                      " completed lease(s); pass resume to continue it",
                  ErrorCode::kPrecondition);
    stats.leases_resumed = complete;
    if (complete > 0)
      obs::counter("sckl.ssta.mc.leases_resumed").add(
          static_cast<std::uint64_t>(complete));
  }

  const std::size_t remaining = num_leases - stats.leases_resumed;
  const std::size_t num_threads = std::max<std::size_t>(
      1, std::min(ThreadPool::resolve_num_threads(options.num_threads),
                  std::max<std::size_t>(remaining, 1)));

  LeaseCoordinator coordinator(std::move(leases), std::move(log),
                               run.lease_timeout_seconds, stats);

  const std::uint64_t mc_span_id = obs::Span::current_id();
  std::atomic<bool> was_cancelled{false};
  const auto worker = [&](std::size_t /*worker_index*/) {
    obs::Span worker_span("ssta.mc.worker", mc_span_id);
    detail::BlockScratch scratch;
    for (;;) {
      if (options.cancelled && options.cancelled()) {
        was_cancelled.store(true, std::memory_order_relaxed);
        break;
      }
      const std::size_t l = coordinator.claim();
      if (l == LeaseCoordinator::npos) break;
      const Lease& lease = coordinator.leases()[l];
      // Lease partial = fold of its blocks in block order (invariant #1).
      detail::BlockPartial lease_partial;
      lease_partial.worst_delay_sketch =
          QuantileSketch(options.sketch_capacity);
      detail::BlockPartial block_partial;
      for (std::size_t b = 0; b < lease.num_blocks; ++b) {
        robust::crash_point(robust::FaultSite::kMcWorkerCrash);
        block_partial = detail::BlockPartial{};
        detail::compute_block_partial(engine, samplers, options,
                                      lease.first_block + b, num_endpoints,
                                      scratch, block_partial, nullptr);
        lease_partial.merge(block_partial);
      }
      coordinator.publish(l, lease_partial, mc_span_id);
    }
  };

  if (remaining > 0) {
    if (num_threads == 1) {
      worker(0);
    } else {
      ThreadPool pool(num_threads);
      pool.run(worker);
    }
  }
  if (was_cancelled.load(std::memory_order_relaxed))
    throw Error("checkpointed mc: cancelled before completion (completed "
                "leases are durable; resume to continue)",
                ErrorCode::kDeadlineExceeded);
  for (const Lease& lease : coordinator.leases())
    ensure(lease.state == LeaseState::kComplete,
           "checkpointed mc: worker pool exited with an incomplete lease");

  // Final fold in lease order (invariant #3): ledger-loaded and freshly
  // computed lease partials are bitwise interchangeable here.
  McSstaResult result;
  result.worst_delay_sketch = QuantileSketch(options.sketch_capacity);
  result.threads_used = num_threads;
  result.endpoint.resize(num_endpoints);
  for (const Lease& lease : coordinator.leases()) {
    result.worst_delay.merge(lease.partial.worst_delay);
    result.worst_delay_sketch.merge(lease.partial.worst_delay_sketch);
    for (std::size_t e = 0; e < num_endpoints; ++e)
      result.endpoint[e].merge(lease.partial.endpoint[e]);
    result.sampling_seconds += lease.partial.sampling_seconds;
    result.sta_seconds += lease.partial.sta_seconds;
  }
  result.total_seconds = total.seconds();
  if (stats_out != nullptr) *stats_out = stats;
  return result;
}

}  // namespace sckl::ssta
