#include "ssta/mc_run.h"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "common/error.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/stopwatch.h"
#include "obs/trace.h"
#include "robust/fault_injection.h"
#include "store/file_lock.h"
#include "store/record_log.h"

namespace sckl::ssta {
namespace {

/// Computes one lease's partial: the fold, in block order, of its blocks'
/// partials (resume invariant #1). Shared by local worker threads and the
/// distributed coordinator's local-fallback path.
detail::BlockPartial compute_lease_partial(const timing::StaEngine& engine,
                                           const ParameterSamplers& samplers,
                                           const McSstaOptions& options,
                                           const Lease& lease,
                                           std::size_t num_endpoints,
                                           detail::BlockScratch& scratch) {
  detail::BlockPartial lease_partial;
  lease_partial.worst_delay_sketch = QuantileSketch(options.sketch_capacity);
  detail::BlockPartial block_partial;
  for (std::size_t b = 0; b < lease.num_blocks; ++b) {
    robust::crash_point(robust::FaultSite::kMcWorkerCrash);
    block_partial = detail::BlockPartial{};
    detail::compute_block_partial(engine, samplers, options,
                                  lease.first_block + b, num_endpoints,
                                  scratch, block_partial, nullptr);
    lease_partial.merge(block_partial);
  }
  return lease_partial;
}

/// Calls share_coordinator(nullptr, nullptr) exactly once, including on the
/// exception paths — the serve registry must drop its pointer before the
/// coordinator object on our stack is destroyed.
class ShareGuard {
 public:
  explicit ShareGuard(
      const std::function<void(LeaseCoordinator*, const LedgerHeader*)>& hook)
      : hook_(hook) {}
  ~ShareGuard() { release(); }
  void release() {
    if (!released_) {
      released_ = true;
      hook_(nullptr, nullptr);
    }
  }

 private:
  const std::function<void(LeaseCoordinator*, const LedgerHeader*)>& hook_;
  bool released_ = false;
};

}  // namespace

McSstaResult run_checkpointed_monte_carlo_ssta(
    const timing::StaEngine& engine, const ParameterSamplers& samplers,
    const McSstaOptions& options, const McRunOptions& run,
    McRunStats* stats_out) {
  require(options.num_samples > 0, "checkpointed mc: no samples");
  require(options.block_size > 0, "checkpointed mc: empty block");
  require(options.lease_ttl_ms > 0, "checkpointed mc: lease_ttl_ms must be > 0");
  require(!options.keep_samples,
          "checkpointed mc: keep_samples is not supported (resumed leases "
          "do not retain per-sample delays)");
  require(valid_run_id(run.run_id),
          "checkpointed mc: run_id must be non-empty [A-Za-z0-9._-]");
  require(!run.ledger_dir.empty(), "checkpointed mc: ledger_dir is required");
  require(run.lease_blocks > 0, "checkpointed mc: lease_blocks must be > 0");
  const std::size_t num_gates = engine.netlist().num_physical_gates();
  for (const auto* sampler : samplers) {
    require(sampler != nullptr, "checkpointed mc: missing sampler");
    require(sampler->num_locations() == num_gates,
            "checkpointed mc: sampler/netlist gate count mismatch");
  }

  obs::Span mc_span("ssta.mc.checkpointed");
  obs::counter("sckl.ssta.mc.checkpointed_runs").add(1);
  obs::Stopwatch total;

  std::filesystem::create_directories(run.ledger_dir);
  std::optional<store::FileLock> lock = store::FileLock::try_acquire(
      run.ledger_dir / (run.run_id + ".lock"), store::FileLock::Mode::kExclusive);
  if (!lock.has_value())
    throw Error("checkpointed mc: run '" + run.run_id +
                    "' is locked by another live process",
                ErrorCode::kOverloaded);

  store::RecordLog log =
      store::RecordLog::open(run.ledger_dir / (run.run_id + ".ledger"));
  log.set_crash_site(robust::FaultSite::kMcLedgerWrite);

  McRunStats stats;
  stats.recovered_torn_tail = log.recovered_torn_tail();

  const std::size_t num_blocks = detail::num_blocks_for(options);
  const std::size_t num_leases =
      (num_blocks + run.lease_blocks - 1) / run.lease_blocks;
  const std::size_t num_endpoints = engine.num_endpoints();
  stats.leases_total = num_leases;

  const LedgerHeader header{run.workload_key, options.num_samples,
                            options.block_size, run.lease_blocks, options.seed,
                            options.sketch_capacity, num_endpoints};

  // Replay the ledger: validate the header binds this exact workload and
  // geometry, then collect completed leases (first record per lease wins —
  // later duplicates are identical bits from a slow pre-crash claimer).
  std::vector<Lease> leases(num_leases);
  for (std::size_t l = 0; l < num_leases; ++l) {
    leases[l].first_block = l * run.lease_blocks;
    leases[l].num_blocks =
        std::min(run.lease_blocks, num_blocks - leases[l].first_block);
  }
  const auto& records = log.records();
  if (records.empty()) {
    std::vector<std::uint8_t> payload;
    header.encode(payload);
    log.append(payload);
    ++stats.ledger_appends;
    obs::counter("sckl.ssta.mc.ledger_appends").add(1);
  } else {
    // ByteReader raises kCorruptArtifact on any truncated field — a CRC'd
    // record that fails to decode is a writer bug, not a torn write.
    wire::ByteReader first(records[0].data(), records[0].size(),
                           ErrorCode::kCorruptArtifact, "mc run ledger");
    if (first.u8() != kLedgerHeaderTag)
      throw Error("checkpointed mc: ledger does not start with a header",
                  ErrorCode::kCorruptArtifact);
    const LedgerHeader on_disk = LedgerHeader::decode(first);
    if (!(on_disk == header))
      throw Error(
          "checkpointed mc: ledger '" + run.run_id +
              "' was written for a different workload or sampling "
              "geometry (workload_key / num_samples / block_size / "
              "lease_blocks / seed / sketch_capacity must all match)",
          ErrorCode::kPrecondition);
    for (std::size_t i = 1; i < records.size(); ++i) {
      wire::ByteReader r(records[i].data(), records[i].size(),
                         ErrorCode::kCorruptArtifact, "mc run ledger");
      if (r.u8() != kLedgerLeaseTag)
        throw Error("checkpointed mc: unexpected ledger record tag",
                    ErrorCode::kCorruptArtifact);
      const std::uint64_t first_block = r.u64();
      const std::uint64_t lease_blocks = r.u64();
      if (first_block % run.lease_blocks != 0 ||
          first_block / run.lease_blocks >= num_leases)
        throw Error("checkpointed mc: lease record outside the run",
                    ErrorCode::kCorruptArtifact);
      Lease& lease = leases[first_block / run.lease_blocks];
      if (lease_blocks != lease.num_blocks)
        throw Error("checkpointed mc: lease record geometry mismatch",
                    ErrorCode::kCorruptArtifact);
      if (lease.state == LeaseState::kComplete) continue;  // dedup
      lease.partial = detail::BlockPartial::decode(r);
      lease.state = LeaseState::kComplete;
    }
    std::size_t complete = 0;
    for (const Lease& lease : leases)
      if (lease.state == LeaseState::kComplete) ++complete;
    if (!run.resume && complete > 0)
      throw Error("checkpointed mc: ledger for run '" + run.run_id +
                      "' already holds " + std::to_string(complete) +
                      " completed lease(s); pass resume to continue it",
                  ErrorCode::kPrecondition);
    stats.leases_resumed = complete;
    if (complete > 0)
      obs::counter("sckl.ssta.mc.leases_resumed").add(
          static_cast<std::uint64_t>(complete));
  }

  const std::size_t remaining = num_leases - stats.leases_resumed;
  std::size_t num_threads = std::max<std::size_t>(
      1, std::min(ThreadPool::resolve_num_threads(options.num_threads),
                  std::max<std::size_t>(remaining, 1)));

  const double ttl_seconds =
      static_cast<double>(options.lease_ttl_ms) / 1000.0;
  LeaseCoordinator coordinator(std::move(leases), std::move(log), ttl_seconds,
                               num_endpoints, stats);

  const std::uint64_t mc_span_id = obs::Span::current_id();
  std::atomic<bool> was_cancelled{false};

  if (run.share_coordinator && remaining > 0) {
    // Distributed coordinator: remote workers do the computing; this
    // thread only waits, reclaims, and falls back to local compute when
    // the workers go quiet (graceful degradation — the run always ends).
    num_threads = 1;
    obs::Span dist_span("ssta.mc.dist_coordinator", mc_span_id);
    run.share_coordinator(&coordinator, &header);
    ShareGuard unshare(run.share_coordinator);
    detail::BlockScratch scratch;
    std::uint64_t seen = coordinator.activity_count();
    while (!coordinator.all_complete()) {
      if (options.cancelled && options.cancelled()) {
        was_cancelled.store(true, std::memory_order_relaxed);
        break;
      }
      if (coordinator.wait_for_remote_activity(seen,
                                               run.local_fallback_seconds))
        continue;
      const std::size_t l = coordinator.claim();
      if (l == LeaseCoordinator::npos) continue;  // all claimed and live
      const detail::BlockPartial lease_partial =
          compute_lease_partial(engine, samplers, options,
                                coordinator.leases()[l], num_endpoints,
                                scratch);
      coordinator.publish(l, lease_partial, mc_span_id);
      obs::counter("sckl.ssta.mc.remote.local_fallback").add(1);
    }
    // Stop accepting remote traffic before the final fold reads the table.
    unshare.release();
  } else if (remaining > 0) {
    const auto worker = [&](std::size_t /*worker_index*/) {
      obs::Span worker_span("ssta.mc.worker", mc_span_id);
      detail::BlockScratch scratch;
      for (;;) {
        if (options.cancelled && options.cancelled()) {
          was_cancelled.store(true, std::memory_order_relaxed);
          break;
        }
        const std::size_t l = coordinator.claim();
        if (l == LeaseCoordinator::npos) break;
        const detail::BlockPartial lease_partial =
            compute_lease_partial(engine, samplers, options,
                                  coordinator.leases()[l], num_endpoints,
                                  scratch);
        coordinator.publish(l, lease_partial, mc_span_id);
      }
    };
    if (num_threads == 1) {
      worker(0);
    } else {
      ThreadPool pool(num_threads);
      pool.run(worker);
    }
  }
  if (was_cancelled.load(std::memory_order_relaxed))
    throw Error("checkpointed mc: cancelled before completion (completed "
                "leases are durable; resume to continue)",
                ErrorCode::kDeadlineExceeded);
  for (const Lease& lease : coordinator.leases())
    ensure(lease.state == LeaseState::kComplete,
           "checkpointed mc: worker pool exited with an incomplete lease");

  // Final fold in lease order (invariant #3): ledger-loaded, locally
  // computed, and remotely published lease partials are bitwise
  // interchangeable here.
  McSstaResult result;
  result.worst_delay_sketch = QuantileSketch(options.sketch_capacity);
  result.threads_used = num_threads;
  result.endpoint.resize(num_endpoints);
  for (const Lease& lease : coordinator.leases()) {
    result.worst_delay.merge(lease.partial.worst_delay);
    result.worst_delay_sketch.merge(lease.partial.worst_delay_sketch);
    for (std::size_t e = 0; e < num_endpoints; ++e)
      result.endpoint[e].merge(lease.partial.endpoint[e]);
    result.sampling_seconds += lease.partial.sampling_seconds;
    result.sta_seconds += lease.partial.sta_seconds;
  }
  result.total_seconds = total.seconds();
  if (stats_out != nullptr) *stats_out = stats;
  return result;
}

}  // namespace sckl::ssta
