// Monte Carlo statistical static timing analysis harness (Sec. 5.1).
//
// Runs N STA evaluations, drawing per-gate values of the four statistical
// parameters from one FieldSampler per parameter (the P_j matrices of
// Algorithms 1/2 are mutually independent, so parameter j reads the
// counter-based stream StreamKey{seed, j} — see common/rng.h for the
// derivation scheme). Samples are generated in blocks to bound memory, and
// the harness separately times sample generation and STA so Table 1's
// speedup decomposition can be reported.
//
// The block loop is parallel: workers claim blocks dynamically off a shared
// counter, draw their block's index range for all four parameters, run STA
// with per-worker scratch state, and record per-block partial statistics
// that are merged in block order after the join. Because every sample is
// index-addressed (the samplers are stateless) and the merge order is
// fixed, the result — including every retained worst-delay sample, the
// accumulated mean/sigma, and the worst-delay quantile sketch — is
// bit-identical for any thread count and any block size partition.
//
// The per-block computation is factored out (detail::compute_block_partial)
// and shared with the checkpointed runner in ssta/mc_run.h, which persists
// completed-lease partials to a durable ledger so a killed run can resume
// and still reproduce the identical statistics.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/statistics.h"
#include "common/wire.h"
#include "field/field_sampler.h"
#include "linalg/matrix.h"
#include "timing/sta.h"

namespace sckl::ssta {

/// Options for one Monte Carlo SSTA run.
struct McSstaOptions {
  std::size_t num_samples = 2000;
  std::size_t block_size = 256;  // samples per generated block
  std::uint64_t seed = 12345;
  bool keep_samples = false;  // retain per-sample worst delays (yield curves)
  /// Per-level buffer size of the worst-delay quantile sketch. Exact while
  /// num_samples <= sketch_capacity; see common/statistics.h for the rank
  /// error beyond that. Must match across runs that resume each other.
  std::size_t sketch_capacity = QuantileSketch::kDefaultCapacity;
  /// Worker threads for the block pipeline: 0 = auto (the SCKL_THREADS
  /// environment variable when set, else hardware concurrency), 1 = serial
  /// on the calling thread, k = exactly k workers. Statistics are
  /// bit-identical for every value.
  std::size_t num_threads = 0;
  /// Lease time-to-live for the checkpointed runner (mc_run.h): a claimed
  /// lease not completed (or, for remote workers, not heartbeat-extended)
  /// within this budget is treated as abandoned and reclaimed for
  /// deterministic recomputation. Ignored by the plain runner. Must be
  /// positive; heartbeat intervals are validated against it (< TTL/3).
  std::uint64_t lease_ttl_ms = 300'000;
  /// Cooperative cancellation, polled between block claims (a block is the
  /// unit of preemption — at most one block of work runs after this first
  /// returns true). When the run is cancelled the harness finishes joining
  /// its workers, then throws sckl::Error(kDeadlineExceeded). The serve
  /// daemon passes a deadline check here so a slow RunSsta request stops
  /// consuming pool threads soon after its deadline expires. Must be
  /// thread-safe; empty = never cancelled.
  std::function<bool()> cancelled;
};

/// Statistics collected over one run.
struct McSstaResult {
  RunningStats worst_delay;                // circuit delay across samples
  QuantileSketch worst_delay_sketch;       // full-distribution summary
  std::vector<RunningStats> endpoint;      // per-endpoint delay statistics
  std::vector<double> worst_delay_samples; // only with keep_samples
  double sampling_seconds = 0.0;           // parameter-sample generation,
  double sta_seconds = 0.0;                //   summed across workers (CPU s)
  double total_seconds = 0.0;              // end-to-end wall time
  std::size_t threads_used = 0;            // resolved worker count
};

/// One sampler per statistical parameter (L, W, Vt, tox), in that order.
/// The same sampler object may back several parameters; streams stay
/// independent because parameter j draws from StreamKey{seed, j}.
using ParameterSamplers =
    std::array<const field::FieldSampler*, timing::kNumStatParameters>;

namespace detail {

/// Statistics of one sample block (or one merged lease of blocks). Kept per
/// block so the final merge runs in block order — the floating-point
/// accumulation is then independent of the thread count. The checkpointed
/// runner serializes merged-lease partials into its ledger, which is why
/// the struct carries wire codecs and bitwise comparison.
struct BlockPartial {
  RunningStats worst_delay;
  QuantileSketch worst_delay_sketch{QuantileSketch::kDefaultCapacity};
  std::vector<RunningStats> endpoint;
  double sampling_seconds = 0.0;
  double sta_seconds = 0.0;

  /// Folds `other` into this partial. The fold is the one merge step used
  /// everywhere (plain runner, lease accumulation, ledger replay), so a
  /// fixed fold order ⇒ bit-identical accumulator state.
  void merge(const BlockPartial& other);

  /// Bit-exact wire codecs (timings travel as IEEE-754 bit patterns too,
  /// though only the statistics take part in the resume invariant).
  void encode(std::vector<std::uint8_t>& out) const;
  static BlockPartial decode(wire::ByteReader& r);

  /// Bitwise comparison of the statistical state (worst_delay, sketch,
  /// endpoints) — timings are excluded, they are wall-clock measurements.
  bool state_equals(const BlockPartial& other) const;
};

/// Per-worker scratch: one sample matrix per statistical parameter plus the
/// shared latent matrix for the staged sampler interface, reused across the
/// blocks a worker claims so allocations happen once.
struct BlockScratch {
  std::array<linalg::Matrix, timing::kNumStatParameters> blocks;
  linalg::Matrix latents;
};

/// Computes block `block_index`'s partial statistics: draws the block's
/// sample range for all four parameters and runs STA per sample. This is a
/// pure function of (engine, samplers, options, block_index) apart from the
/// recorded timings, which is what makes recomputing a lost block after a
/// crash reproduce the original partial bit for bit. `samples_out`, when
/// non-null, receives per-sample worst delays at their global sample index
/// (the keep_samples path); it must already be sized to num_samples.
void compute_block_partial(const timing::StaEngine& engine,
                           const ParameterSamplers& samplers,
                           const McSstaOptions& options,
                           std::size_t block_index,
                           std::size_t num_endpoints, BlockScratch& scratch,
                           BlockPartial& partial,
                           std::vector<double>* samples_out);

/// Number of blocks a run partitions into.
inline std::size_t num_blocks_for(const McSstaOptions& options) {
  return (options.num_samples + options.block_size - 1) / options.block_size;
}

}  // namespace detail

/// Runs Monte Carlo SSTA. All samplers must cover exactly the engine's
/// physical gate count and be safe for concurrent const use (every sampler
/// in this codebase is: sample_block is a pure function of its arguments).
McSstaResult run_monte_carlo_ssta(const timing::StaEngine& engine,
                                  const ParameterSamplers& samplers,
                                  const McSstaOptions& options = {});

}  // namespace sckl::ssta
