// Monte Carlo statistical static timing analysis harness (Sec. 5.1).
//
// Runs N STA evaluations, drawing per-gate values of the four statistical
// parameters from one FieldSampler per parameter (the P_j matrices of
// Algorithms 1/2 are mutually independent, so parameter j reads the
// counter-based stream StreamKey{seed, j} — see common/rng.h for the
// derivation scheme). Samples are generated in blocks to bound memory, and
// the harness separately times sample generation and STA so Table 1's
// speedup decomposition can be reported.
//
// The block loop is parallel: workers claim blocks dynamically off a shared
// counter, draw their block's index range for all four parameters, run STA
// with per-worker scratch state, and record per-block partial statistics
// that are merged in block order after the join. Because every sample is
// index-addressed (the samplers are stateless) and the merge order is
// fixed, the result — including every retained worst-delay sample and the
// accumulated mean/sigma — is bit-identical for any thread count and any
// block size partition.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/statistics.h"
#include "field/field_sampler.h"
#include "timing/sta.h"

namespace sckl::ssta {

/// Options for one Monte Carlo SSTA run.
struct McSstaOptions {
  std::size_t num_samples = 2000;
  std::size_t block_size = 256;  // samples per generated block
  std::uint64_t seed = 12345;
  bool keep_samples = false;  // retain per-sample worst delays (yield curves)
  /// Worker threads for the block pipeline: 0 = auto (the SCKL_THREADS
  /// environment variable when set, else hardware concurrency), 1 = serial
  /// on the calling thread, k = exactly k workers. Statistics are
  /// bit-identical for every value.
  std::size_t num_threads = 0;
  /// Cooperative cancellation, polled between block claims (a block is the
  /// unit of preemption — at most one block of work runs after this first
  /// returns true). When the run is cancelled the harness finishes joining
  /// its workers, then throws sckl::Error(kDeadlineExceeded). The serve
  /// daemon passes a deadline check here so a slow RunSsta request stops
  /// consuming pool threads soon after its deadline expires. Must be
  /// thread-safe; empty = never cancelled.
  std::function<bool()> cancelled;
};

/// Statistics collected over one run.
struct McSstaResult {
  RunningStats worst_delay;                // circuit delay across samples
  std::vector<RunningStats> endpoint;      // per-endpoint delay statistics
  std::vector<double> worst_delay_samples; // only with keep_samples
  double sampling_seconds = 0.0;           // parameter-sample generation,
  double sta_seconds = 0.0;                //   summed across workers (CPU s)
  double total_seconds = 0.0;              // end-to-end wall time
  std::size_t threads_used = 0;            // resolved worker count
};

/// One sampler per statistical parameter (L, W, Vt, tox), in that order.
/// The same sampler object may back several parameters; streams stay
/// independent because parameter j draws from StreamKey{seed, j}.
using ParameterSamplers =
    std::array<const field::FieldSampler*, timing::kNumStatParameters>;

/// Runs Monte Carlo SSTA. All samplers must cover exactly the engine's
/// physical gate count and be safe for concurrent const use (every sampler
/// in this codebase is: sample_block is a pure function of its arguments).
McSstaResult run_monte_carlo_ssta(const timing::StaEngine& engine,
                                  const ParameterSamplers& samplers,
                                  const McSstaOptions& options = {});

}  // namespace sckl::ssta
