// Monte Carlo statistical static timing analysis harness (Sec. 5.1).
//
// Runs N STA evaluations, drawing per-gate values of the four statistical
// parameters from one FieldSampler per parameter (the P_j matrices of
// Algorithms 1/2 are mutually independent, so each parameter gets its own
// RNG stream). Samples are generated in blocks to bound memory, and the
// harness separately times sample generation and STA so Table 1's speedup
// decomposition can be reported.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/statistics.h"
#include "field/field_sampler.h"
#include "timing/sta.h"

namespace sckl::ssta {

/// Options for one Monte Carlo SSTA run.
struct McSstaOptions {
  std::size_t num_samples = 2000;
  std::size_t block_size = 256;  // samples per generated block
  std::uint64_t seed = 12345;
  bool keep_samples = false;  // retain per-sample worst delays (yield curves)
};

/// Statistics collected over one run.
struct McSstaResult {
  RunningStats worst_delay;                // circuit delay across samples
  std::vector<RunningStats> endpoint;      // per-endpoint delay statistics
  std::vector<double> worst_delay_samples; // only with keep_samples
  double sampling_seconds = 0.0;           // parameter-sample generation
  double sta_seconds = 0.0;                // timer evaluation
  double total_seconds = 0.0;              // end-to-end (incl. bookkeeping)
};

/// One sampler per statistical parameter (L, W, Vt, tox), in that order.
/// The same sampler object may back several parameters; streams stay
/// independent because each parameter splits its own RNG.
using ParameterSamplers =
    std::array<const field::FieldSampler*, timing::kNumStatParameters>;

/// Runs Monte Carlo SSTA. All samplers must cover exactly the engine's
/// physical gate count.
McSstaResult run_monte_carlo_ssta(const timing::StaEngine& engine,
                                  const ParameterSamplers& samplers,
                                  const McSstaOptions& options = {});

}  // namespace sckl::ssta
