// Blocking client for the sckl_serve protocol.
//
// One Client wraps one connection and issues one request at a time
// (request/reply lockstep; the request id still increments per call so
// traces and error frames correlate). Remote failures rethrow client-side
// as sckl::Error carrying the server's original ErrorCode — calling code
// handles a remote kOverloaded exactly like a local one.
//
// Not thread-safe: share nothing, or give each thread its own Client (the
// server handles concurrent connections; that is the intended way to issue
// concurrent requests).
#pragma once

#include <cstdint>
#include <string>

#include "common/socket.h"
#include "linalg/matrix.h"
#include "serve/protocol.h"

namespace sckl::serve {

class Client {
 public:
  /// Connects to a unix-domain server socket. Throws on failure.
  static Client connect_unix(const std::string& path);
  /// Connects to a loopback TCP server. Throws on failure.
  static Client connect_tcp(std::uint16_t port);

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// Deadline attached to every subsequent request (0 = none). The server
  /// rejects work it cannot finish in time with kDeadlineExceeded.
  void set_deadline_ms(std::uint32_t deadline_ms) { deadline_ms_ = deadline_ms; }

  /// Largest reply payload this client will accept.
  void set_max_payload_bytes(std::size_t bytes) { max_payload_bytes_ = bytes; }

  /// Bound on how long a call waits for the reply's first byte (0 = wait
  /// forever). A silent peer — half-open connection, stalled daemon —
  /// surfaces as kDeadlineExceeded instead of a hang, which is what lets a
  /// distributed worker's retry loop make progress across coordinator
  /// failures. Distinct from set_deadline_ms, which is the *server-side*
  /// execution budget carried in the frame header.
  void set_rpc_timeout_ms(int timeout_ms) { rpc_timeout_ms_ = timeout_ms; }

  HelloReply hello();
  SolveKleReply solve_kle(const SolveKleRequest& request);
  SampleBlockReply sample_block(const SampleBlockRequest& request);
  /// Convenience: sample_block decoded straight into a row-major Matrix of
  /// shape (range.count, locations.size()) — bit-identical to running
  /// KleFieldSampler::sample_block locally.
  linalg::Matrix sample_matrix(const SampleBlockRequest& request);
  RunSstaReply run_ssta(const RunSstaRequest& request);
  StatsReply stats();
  /// Distributed Monte Carlo worker RPCs (protocol v3; see DESIGN.md §12).
  ClaimLeasesReply claim_leases(const ClaimLeasesRequest& request);
  PublishPartialReply publish_partial(const PublishPartialRequest& request);
  HeartbeatReply heartbeat(const HeartbeatRequest& request);
  RunStatusReply run_status(const RunStatusRequest& request);
  /// Asks the server to shut down gracefully (acknowledged before draining).
  void shutdown_server();

  /// Escape hatch for protocol tests: send a raw frame (any header fields)
  /// and read back one reply payload, without the usual encoding.
  std::vector<std::uint8_t> roundtrip_raw(wire::FrameHeader header,
                                          const std::vector<std::uint8_t>& payload);

  /// The underlying socket (protocol tests write hostile bytes directly).
  int fd() const { return fd_.get(); }

 private:
  explicit Client(net::Fd fd) : fd_(std::move(fd)) {}

  /// Sends `payload` as a frame of `type` and reads the matching reply
  /// payload (validating the echoed request id).
  std::vector<std::uint8_t> roundtrip(MessageType type,
                                      const std::vector<std::uint8_t>& payload);

  net::Fd fd_;
  std::uint64_t next_request_id_ = 1;
  std::uint32_t deadline_ms_ = 0;
  std::size_t max_payload_bytes_ = std::size_t{256} << 20;
  int rpc_timeout_ms_ = 0;
};

}  // namespace sckl::serve
