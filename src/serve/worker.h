// Remote Monte Carlo worker: the claim/compute/publish half of the
// distributed checkpointed runner (protocol v3, DESIGN.md §12).
//
// A worker is stateless by design. Everything it needs to compute a lease
// arrives in the ClaimLeases reply: the workload spec (circuit, seed, r,
// eigenpairs, mesh/kernel parameters — enough to rebuild the exact
// ExperimentPipeline the coordinator runs) and the sampling geometry
// (num_samples, block_size, mc seed, sketch capacity), taken verbatim from
// the run's LedgerHeader. The KLE itself is fetched through the ordinary
// kSolveKle message (want_artifact), so the worker never touches the
// coordinator's filesystem. Because every sample is a pure function of
// (seed, parameter, global index), the partial a worker publishes is bit
// for bit the partial the coordinator would have computed locally — which
// is why kills, reclaims, and duplicated publishes cannot change the final
// statistics.
//
// Failure behaviour:
//   - Every RPC runs under a bounded, jittered retry (robust/retry.h) that
//     reconnects on kIoTransient / kDeadlineExceeded, so the worker rides
//     out coordinator restarts (the resumed run re-registers under the
//     same run_id) and injected transport faults (`mc_rpc_transient`).
//   - While computing, the worker heartbeats every heartbeat_interval_ms
//     (the cadence the coordinator advertises), keeping its leases alive.
//     A stalled worker (`mc_worker_stall` sleeps through >TTL without
//     heartbeating) finds its publish rejected — the lease was reclaimed —
//     discards the partial, and claims again.
//   - An unknown run is polled (the coordinator may not have started yet);
//     a kComplete run, or an exhausted runtime budget, ends the worker.
//   - A config-hash mismatch is a kPrecondition error and is fatal: this
//     worker is computing a different workload.
#pragma once

#include <cstdint>
#include <string>

#include "robust/retry.h"

namespace sckl::serve {

/// Connection + behaviour knobs of one run_worker call.
struct WorkerOptions {
  /// Coordinator endpoint: a unix socket path, or (when empty) loopback
  /// TCP on tcp_port.
  std::string unix_path;
  std::uint16_t tcp_port = 0;

  /// The distributed run to work on (required).
  std::string run_id;
  /// Nonzero worker identity for lease ownership and heartbeats; 0 derives
  /// one from the process id. Must differ between concurrent workers.
  std::uint64_t worker_id = 0;

  /// Leases requested per ClaimLeases round trip.
  std::size_t max_leases_per_claim = 1;
  /// Sleep between polls while the run is unknown or fully claimed.
  int poll_ms = 200;
  /// Client-side budget for one RPC reply (also sent as the server-side
  /// deadline); a silent coordinator turns into kDeadlineExceeded and a
  /// reconnect instead of a hang.
  int rpc_timeout_ms = 5'000;
  /// Retry/reconnect pacing for every RPC. The default rides out a
  /// coordinator restart: many attempts, capped backoff, 50% jitter so a
  /// worker fleet doesn't reconnect in lockstep.
  robust::RetryPolicy rpc_retry{/*max_attempts=*/20,
                                /*initial_backoff_seconds=*/0.02,
                                /*backoff_growth=*/2.0,
                                /*max_backoff_seconds=*/0.5,
                                /*jitter=*/0.5};
  /// Overall wall-clock budget; 0 = run until the run completes (or an
  /// RPC exhausts its retries).
  double max_runtime_seconds = 0.0;
};

/// What one run_worker call did, for tests and the chaos harness.
struct WorkerReport {
  std::uint64_t worker_id = 0;        // resolved identity actually used
  std::size_t leases_computed = 0;    // published and accepted
  std::size_t blocks_computed = 0;
  std::size_t publishes_rejected = 0; // lease expired/reclaimed under us
  std::size_t heartbeats = 0;         // successful heartbeat RPCs
  std::size_t rpc_retries = 0;        // transient failures absorbed
  bool run_complete = false;          // coordinator reported kComplete
};

/// Runs the worker loop against the coordinator until the run completes,
/// the runtime budget expires, or an unrecoverable error (exhausted
/// retries, config mismatch) throws.
WorkerReport run_worker(const WorkerOptions& options);

}  // namespace sckl::serve
