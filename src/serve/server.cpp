#include "serve/server.h"

#include <algorithm>
#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "common/error.h"
#include "common/thread_pool.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/stopwatch.h"
#include "obs/trace.h"
#include "robust/fault_injection.h"
#include "store/kle_io.h"

namespace sckl::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::optional<Clock::time_point> deadline_from(std::uint32_t deadline_ms,
                                               std::uint32_t default_ms,
                                               Clock::time_point received) {
  const std::uint32_t ms = deadline_ms != 0 ? deadline_ms : default_ms;
  if (ms == 0) return std::nullopt;
  return received + std::chrono::milliseconds(ms);
}

void append_kv(std::string& out, const char* key, std::uint64_t value,
               bool comma = true) {
  out += "    \"";
  out += key;
  out += "\": ";
  out += std::to_string(value);
  out += comma ? ",\n" : "\n";
}

}  // namespace

Server::Server(const ServerOptions& options)
    : options_(options), sampler_cache_(options.sampler_cache_bytes) {
  require(!options_.store_root.empty(), "Server: store_root is required");
  require(!options_.unix_path.empty() || options_.tcp,
          "Server: configure a unix socket path and/or TCP");
  require(options_.batch_limit >= 1, "Server: batch_limit must be >= 1");
  require(options_.sample_chunk_rows >= 1,
          "Server: sample_chunk_rows must be >= 1");
  // A chunk larger than the per-request row cap can never fill; clamp so
  // the two limits stay coherent however they were configured. The serve
  // CLI additionally rejects an explicit --block-samples above the cap.
  options_.sample_chunk_rows =
      std::min(options_.sample_chunk_rows, options_.max_sample_rows);
  require(options_.lease_ttl_ms > 0, "Server: lease_ttl_ms must be > 0");
  // A worker heartbeating on schedule must get several extension chances
  // before its leases can expire, or routine scheduling jitter would
  // trigger reclaims and throw away good work.
  require(options_.heartbeat_interval_ms > 0 &&
              options_.heartbeat_interval_ms * 3 < options_.lease_ttl_ms,
          "Server: heartbeat_interval_ms must be positive and less than "
          "lease_ttl_ms / 3 (a worker needs several heartbeat opportunities "
          "per lease lifetime)");
  store::StoreOptions store_options;
  store_options.cache_bytes = options_.store_cache_bytes;
  store_ = std::make_unique<store::KleArtifactStore>(options_.store_root,
                                                     store_options);
}

Server::~Server() { stop(); }

void Server::start() {
  require(!started_.load(), "Server: already started");
  obs::register_standard_metrics();
  if (!options_.unix_path.empty())
    unix_listener_ = net::listen_unix(options_.unix_path);
  if (options_.tcp)
    tcp_listener_ = net::listen_tcp(options_.tcp_port, bound_tcp_port_);
  started_.store(true);

  if (unix_listener_.valid())
    accept_threads_.emplace_back(
        [this, fd = unix_listener_.get()] { accept_loop(fd); });
  if (tcp_listener_.valid())
    accept_threads_.emplace_back(
        [this, fd = tcp_listener_.get()] { accept_loop(fd); });

  const std::size_t workers =
      ThreadPool::resolve_num_threads(options_.num_threads);
  dispatcher_ = std::thread([this, workers] {
    // The worker pool IS the existing common/ThreadPool: one barrier-style
    // run() whose job loops popping requests until shutdown.
    ThreadPool pool(workers);
    pool.run([this](std::size_t) { worker_loop(); });
  });
}

void Server::stop() {
  if (!started_.load()) return;
  bool expected = false;
  if (!stopped_.compare_exchange_strong(expected, true)) return;

  // 1. Stop accepting. Accept loops poll with a short timeout, so they
  //    notice the flag promptly; the listeners are closed only after the
  //    join so no loop ever polls a dead fd.
  stop_accepting_.store(true);
  for (std::thread& t : accept_threads_)
    if (t.joinable()) t.join();
  accept_threads_.clear();
  unix_listener_.reset();
  tcp_listener_.reset();

  // 2. Drain: no new work is admitted (enqueue rejects while draining), and
  //    we give queued + in-flight requests up to drain_ms to finish.
  draining_.store(true);
  std::deque<Request> leftovers;
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    drained_cv_.wait_for(lock, std::chrono::milliseconds(options_.drain_ms),
                         [&] { return queue_.empty() && in_flight_ == 0; });
    leftovers.swap(queue_);
  }
  for (Request& request : leftovers)
    reply_error(request, ErrorCode::kOverloaded,
                "server shutting down before this request could run");

  // 3. Stop the workers (any request already executing completes first —
  //    its own deadline bounds how long that can take).
  stop_workers_.store(true);
  queue_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();

  // 4. Unblock the connection readers and wait for them to deregister.
  //    Readers are detached and reap themselves (see connection_loop); the
  //    shutdown makes every blocked read return promptly, so this wait is
  //    bounded by reader epilogue time, not client behaviour.
  {
    std::unique_lock<std::mutex> lock(conn_mu_);
    for (const std::shared_ptr<Connection>& conn : connections_)
      conn->fd.shutdown_both();
    readers_cv_.wait(lock, [&] { return active_readers_ == 0; });
    connections_.clear();
  }

  if (!options_.unix_path.empty()) std::remove(options_.unix_path.c_str());
}

void Server::request_stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_requested_.store(true);
  }
  stop_cv_.notify_all();
}

bool Server::wait_for_stop_request(int timeout_ms) {
  std::unique_lock<std::mutex> lock(stop_mu_);
  return stop_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                           [&] { return stop_requested_.load(); });
}

void Server::accept_loop(int listen_fd) {
  while (!stop_accepting_.load()) {
    try {
      net::Fd client = net::accept_with_timeout(listen_fd, 100);
      if (!client.valid()) continue;  // timeout tick: re-check the flag
      obs::counter("sckl.serve.connections").add(1);
      if (robust::fault_injected(robust::FaultSite::kServeAccept)) {
        // Injected accept failure: the connection is dropped on the floor;
        // the client observes EOF and may retry.
        continue;
      }
      auto conn = std::make_shared<Connection>();
      conn->fd = std::move(client);
      // Register before the thread starts so its exit-time deregistration
      // always finds the entry; the reader is detached — it reaps itself,
      // and stop() waits on active_readers_ instead of joining.
      {
        std::lock_guard<std::mutex> lock(conn_mu_);
        connections_.push_back(conn);
        ++active_readers_;
      }
      try {
        std::thread([this, conn] { connection_loop(conn); }).detach();
      } catch (...) {
        std::lock_guard<std::mutex> lock(conn_mu_);
        connections_.erase(
            std::remove(connections_.begin(), connections_.end(), conn),
            connections_.end());
        --active_readers_;
        throw;
      }
    } catch (const Error& e) {
      if (stop_accepting_.load()) break;
      std::fprintf(stderr, "sckl_serve: accept error: %s\n", e.what());
    } catch (const std::exception& e) {
      if (stop_accepting_.load()) break;
      std::fprintf(stderr, "sckl_serve: accept error: %s\n", e.what());
    }
  }
}

void Server::connection_loop(std::shared_ptr<Connection> conn) {
  // Sends an error frame echoing whatever of the request header we managed
  // to parse; swallows write failures (the peer may already be gone).
  const auto send_error = [&](const wire::FrameHeader& echo, ErrorCode code,
                              const std::string& message) {
    try {
      wire::FrameHeader header;
      header.type = echo.type;
      header.request_id = echo.request_id;
      std::lock_guard<std::mutex> lock(conn->write_mu);
      wire::write_frame(conn->fd.get(), header, make_error_reply(code, message));
    } catch (const Error&) {
    }
  };

  // On exit the socket is shut down (not closed: a worker may still be
  // writing a reply for an admitted request, and the fd must not be reused
  // under it) so the peer observes EOF, and this reader deregisters
  // itself: the Connection leaves connections_ immediately and the fd
  // closes with the last shared_ptr — a disconnecting client frees its fd
  // and slot right away instead of at stop(). The notify happens under
  // conn_mu_ so stop()'s waiter cannot destroy the Server between our
  // predicate update and the notify.
  struct ReapOnExit {
    Server* server;
    const std::shared_ptr<Connection>& conn;
    ~ReapOnExit() {
      obs::counter("sckl.serve.connections_reaped").add(1);
      conn->fd.shutdown_both();
      std::lock_guard<std::mutex> lock(server->conn_mu_);
      auto& conns = server->connections_;
      conns.erase(std::remove(conns.begin(), conns.end(), conn), conns.end());
      --server->active_readers_;
      server->readers_cv_.notify_all();
    }
  } reap_on_exit{this, conn};

  for (;;) {
    wire::FrameHeader header;
    std::vector<std::uint8_t> payload;
    try {
      if (!wire::read_frame(conn->fd.get(), options_.max_payload_bytes, header,
                            payload))
        return;  // clean EOF at a frame boundary
    } catch (const Error& e) {
      // Structural garbage (bad magic, hostile length, CRC mismatch) or a
      // mid-frame disconnect: reply with the typed error if anything is
      // still listening, then drop the connection — the byte stream cannot
      // be resynchronized.
      obs::counter("sckl.serve.rejected.protocol").add(1);
      send_error(header, e.code(), e.what());
      return;
    } catch (const std::exception& e) {
      obs::counter("sckl.serve.rejected.protocol").add(1);
      send_error(header, ErrorCode::kProtocol, e.what());
      return;
    }

    if (header.version != wire::kProtocolVersion) {
      // The frame itself parsed (the header layout is version-stable), so
      // the stream stays in sync: answer and keep serving.
      obs::counter("sckl.serve.rejected.protocol").add(1);
      send_error(header, ErrorCode::kVersionMismatch,
                 "unsupported protocol version " +
                     std::to_string(header.version) + " (this server speaks " +
                     std::to_string(wire::kProtocolVersion) + ")");
      continue;
    }
    if (!known_message_type(header.type)) {
      obs::counter("sckl.serve.rejected.protocol").add(1);
      send_error(header, ErrorCode::kProtocol,
                 "unknown message type " + std::to_string(header.type));
      continue;
    }
    if (robust::fault_injected(robust::FaultSite::kServeRead)) {
      send_error(header, ErrorCode::kIoTransient,
                 "request read failure injected at fault site 'serve_read'");
      continue;
    }

    Request request;
    request.conn = conn;
    request.header = header;
    request.type = static_cast<MessageType>(header.type);
    request.deadline = deadline_from(header.deadline_ms,
                                     options_.default_deadline_ms, Clock::now());
    try {
      wire::ByteReader r(payload.data(), payload.size(), ErrorCode::kProtocol,
                         "serve request");
      switch (request.type) {
        case MessageType::kHello:
        case MessageType::kStats:
        case MessageType::kShutdown:
          break;  // empty body
        case MessageType::kSolveKle:
          request.solve = decode_solve_kle_request(r);
          break;
        case MessageType::kSampleBlock: {
          request.sample = decode_sample_block_request(r);
          // Bound the work a single request can pin a worker with *before*
          // admission: admission control only sees the queue, not a worker
          // stuck generating an unbounded reply. The row check comes first
          // so the byte product below cannot overflow.
          if (request.sample->range.count > options_.max_sample_rows) {
            obs::counter("sckl.serve.rejected.row_limit").add(1);
            throw Error("sample_block: range.count " +
                            std::to_string(request.sample->range.count) +
                            " exceeds the server limit of " +
                            std::to_string(options_.max_sample_rows) +
                            " rows per request; split the draw",
                        ErrorCode::kPrecondition);
          }
          const std::uint64_t reply_bytes =
              static_cast<std::uint64_t>(request.sample->range.count) *
              request.sample->locations.size() * 8;
          if (reply_bytes > options_.max_payload_bytes) {
            obs::counter("sckl.serve.rejected.reply_bytes").add(1);
            throw Error("sample_block: reply would be " +
                            std::to_string(reply_bytes) +
                            " bytes, above the frame payload cap of " +
                            std::to_string(options_.max_payload_bytes),
                        ErrorCode::kPrecondition);
          }
          // Sampler identity: requests agreeing on this key can share one
          // constructed sampler (the batching unit).
          store::ContentHasher h;
          h.update_u64(store::artifact_key(request.sample->config));
          h.update_u64(request.sample->r);
          h.update_u64(request.sample->locations.size());
          for (const geometry::Point2& p : request.sample->locations) {
            h.update_double(p.x);
            h.update_double(p.y);
          }
          request.batch_key = h.digest();
          break;
        }
        case MessageType::kRunSsta:
          request.ssta = decode_run_ssta_request(r);
          break;
        case MessageType::kClaimLeases:
          request.claim = decode_claim_leases_request(r);
          break;
        case MessageType::kPublishPartial:
          request.publish = decode_publish_partial_request(r);
          break;
        case MessageType::kHeartbeat:
          request.heartbeat = decode_heartbeat_request(r);
          break;
        case MessageType::kRunStatus:
          request.status = decode_run_status_request(r);
          break;
      }
      if (r.remaining() != 0)
        throw Error("serve request: trailing bytes after payload",
                    ErrorCode::kProtocol);
    } catch (const Error& e) {
      obs::counter("sckl.serve.rejected.protocol").add(1);
      send_error(header, e.code(), e.what());
      continue;  // the payload was fully consumed; the stream is in sync
    } catch (const std::exception& e) {
      // Defense in depth: decode raises sckl::Error by construction, but a
      // std::length_error/bad_alloc escaping here would otherwise unwind a
      // bare thread and std::terminate the daemon.
      obs::counter("sckl.serve.rejected.protocol").add(1);
      send_error(header, ErrorCode::kProtocol, e.what());
      continue;
    }

    obs::counter("sckl.serve.requests").add(1);
    if (!enqueue(std::move(request))) {
      obs::counter("sckl.serve.rejected.overloaded").add(1);
      send_error(header, ErrorCode::kOverloaded,
                 draining_.load() ? "server is shutting down"
                                  : "request queue is full; back off");
    }
  }
}

bool Server::enqueue(Request&& request) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (draining_.load() || stop_workers_.load()) return false;
    if (queue_.size() >= options_.max_queue) return false;
    queue_.push_back(std::move(request));
    obs::gauge("sckl.serve.queue_depth")
        .set(static_cast<double>(queue_.size()));
  }
  queue_cv_.notify_all();
  return true;
}

bool Server::deadline_expired(const Request& request) {
  if (robust::fault_injected(robust::FaultSite::kServeDeadline)) return true;
  return request.deadline && Clock::now() > *request.deadline;
}

void Server::worker_loop() {
  for (;;) {
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [&] { return stop_workers_.load() || !queue_.empty(); });
      if (queue_.empty()) return;  // only reachable when stopping
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();

      Request& head = batch.front();
      if (head.type == MessageType::kSampleBlock && options_.batch_limit > 1) {
        const auto collect = [&] {
          for (auto it = queue_.begin();
               it != queue_.end() && batch.size() < options_.batch_limit;) {
            if (it->type == MessageType::kSampleBlock &&
                it->batch_key == head.batch_key) {
              batch.push_back(std::move(*it));
              it = queue_.erase(it);
            } else {
              ++it;
            }
          }
        };
        collect();
        if (options_.batch_window_ms > 0 &&
            batch.size() < options_.batch_limit) {
          // Hold the batch open briefly so concurrent clients hitting the
          // same KLE land in one sampler pass instead of N.
          const auto window_end =
              Clock::now() + std::chrono::milliseconds(options_.batch_window_ms);
          while (batch.size() < options_.batch_limit &&
                 !stop_workers_.load()) {
            if (queue_cv_.wait_until(lock, window_end) ==
                std::cv_status::timeout) {
              collect();
              break;
            }
            collect();
          }
        }
      }
      in_flight_ += batch.size();
      obs::gauge("sckl.serve.queue_depth")
          .set(static_cast<double>(queue_.size()));
    }

    if (batch.size() > 1) {
      obs::counter("sckl.serve.batches").add(1);
      obs::counter("sckl.serve.batched_requests").add(batch.size());
    }
    try {
      if (batch.front().type == MessageType::kSampleBlock)
        execute_sample_batch(batch);
      else
        execute(batch.front());
    } catch (...) {
      // execute() handles per-request errors; this is a last-resort guard
      // so no exception can escape into the pool barrier.
    }

    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      in_flight_ -= batch.size();
      if (queue_.empty() && in_flight_ == 0) drained_cv_.notify_all();
    }
  }
}

void Server::execute(Request& request) {
  obs::Span span("serve.request");
  span.set_tag(request.header.request_id);
  obs::Stopwatch watch;
  if (deadline_expired(request)) {
    obs::counter("sckl.serve.rejected.deadline").add(1);
    reply_error(request, ErrorCode::kDeadlineExceeded,
                "deadline expired before the request was scheduled");
    return;
  }
  try {
    switch (request.type) {
      case MessageType::kHello: {
        HelloReply reply;
        reply.server = options_.server_name;
        send_payload(request, encode_reply(reply), /*is_error=*/false);
        break;
      }
      case MessageType::kSolveKle:
        send_payload(request, encode_reply(do_solve(*request.solve)),
                     /*is_error=*/false);
        break;
      case MessageType::kRunSsta:
        send_payload(request, encode_reply(do_run_ssta(*request.ssta, request)),
                     /*is_error=*/false);
        break;
      case MessageType::kStats: {
        StatsReply reply;
        reply.json = stats_json();
        send_payload(request, encode_reply(reply), /*is_error=*/false);
        break;
      }
      case MessageType::kShutdown:
        send_payload(request, make_ok_reply(), /*is_error=*/false);
        request_stop();
        break;
      case MessageType::kClaimLeases:
        send_payload(request, encode_reply(do_claim_leases(*request.claim)),
                     /*is_error=*/false);
        break;
      case MessageType::kPublishPartial:
        send_payload(request, encode_reply(do_publish_partial(*request.publish)),
                     /*is_error=*/false);
        break;
      case MessageType::kHeartbeat:
        send_payload(request, encode_reply(do_heartbeat(*request.heartbeat)),
                     /*is_error=*/false);
        break;
      case MessageType::kRunStatus:
        send_payload(request, encode_reply(do_run_status(*request.status)),
                     /*is_error=*/false);
        break;
      case MessageType::kSampleBlock:
        break;  // handled by execute_sample_batch
    }
  } catch (const Error& e) {
    if (e.code() == ErrorCode::kDeadlineExceeded)
      obs::counter("sckl.serve.rejected.deadline").add(1);
    reply_error(request, e.code(), e.what());
  } catch (const std::exception& e) {
    reply_error(request, ErrorCode::kGeneric, e.what());
  }
  obs::histogram("sckl.serve.request_us").record(watch.seconds() * 1e6);
}

void Server::execute_sample_batch(std::vector<Request>& batch) {
  // One sampler lookup/construction serves the whole batch.
  std::shared_ptr<const field::KleFieldSampler> sampler;
  try {
    sampler = sampler_for(*batch.front().sample);
  } catch (const Error& e) {
    for (Request& request : batch) reply_error(request, e.code(), e.what());
    return;
  } catch (const std::exception& e) {
    for (Request& request : batch)
      reply_error(request, ErrorCode::kGeneric, e.what());
    return;
  }

  for (Request& request : batch) {
    obs::Span span("serve.sample_block");
    span.set_tag(request.header.request_id);
    obs::Stopwatch watch;
    const SampleBlockRequest& body = *request.sample;
    try {
      SampleBlockReply reply;
      reply.rows = body.range.count;
      reply.cols = sampler->num_locations();
      reply.values.reserve(static_cast<std::size_t>(reply.rows) *
                           static_cast<std::size_t>(reply.cols));
      linalg::Matrix latents;
      linalg::Matrix chunk;
      std::size_t done = 0;
      while (done < body.range.count) {
        // Deadlines cancel between chunks, so one giant request cannot pin
        // a worker past its budget.
        if (deadline_expired(request))
          throw Error("sample_block: deadline expired mid-generation",
                      ErrorCode::kDeadlineExceeded);
        const std::size_t n = std::min(options_.sample_chunk_rows,
                                       body.range.count - done);
        // Chunking cannot change the bits: every sample row is a pure
        // function of its global index (stateless index-addressed draws).
        // The chunk is produced through the staged interface — one latent
        // fill, one GEMM — with both matrices reused across chunks.
        const field::SampleRange range{body.range.first + done, n};
        sampler->latent_block(range, body.stream, latents);
        sampler->reconstruct(latents, chunk);
        reply.values.insert(reply.values.end(), chunk.data(),
                            chunk.data() + n * sampler->num_locations());
        done += n;
      }
      send_payload(request, encode_reply(reply), /*is_error=*/false);
    } catch (const Error& e) {
      if (e.code() == ErrorCode::kDeadlineExceeded)
        obs::counter("sckl.serve.rejected.deadline").add(1);
      reply_error(request, e.code(), e.what());
    } catch (const std::exception& e) {
      reply_error(request, ErrorCode::kGeneric, e.what());
    }
    obs::histogram("sckl.serve.request_us").record(watch.seconds() * 1e6);
  }
}

SolveKleReply Server::do_solve(const SolveKleRequest& request) {
  const auto kernel =
      store::make_kernel(request.config.kernel_id, request.config.kernel_params);
  // Concurrent cold solves of the same key dedup through the store's
  // per-key lock: exactly one caller runs the eigensolve, the rest load the
  // winner's artifact (StoreHealth::deduped_solves counts them).
  const store::FetchResult fetch = store_->get_or_compute(request.config, *kernel);
  SolveKleReply reply;
  reply.key = store::artifact_key(request.config);
  reply.source = static_cast<std::uint32_t>(fetch.source);
  reply.seconds = fetch.seconds;
  reply.mesh_triangles = fetch.artifact->mesh().num_triangles();
  reply.num_eigenpairs = fetch.artifact->kle().eigenvalues().size();
  if (request.want_artifact) reply.artifact = store::encode_kle(*fetch.artifact);
  return reply;
}

std::shared_ptr<const field::KleFieldSampler> Server::sampler_for(
    const SampleBlockRequest& request) {
  store::ContentHasher h;
  h.update_u64(store::artifact_key(request.config));
  h.update_u64(request.r);
  h.update_u64(request.locations.size());
  for (const geometry::Point2& p : request.locations) {
    h.update_double(p.x);
    h.update_double(p.y);
  }
  const std::uint64_t key = h.digest();
  if (auto cached = sampler_cache_.get(key)) {
    obs::counter("sckl.serve.sampler_cache.hits").add(1);
    return cached;
  }
  obs::counter("sckl.serve.sampler_cache.misses").add(1);
  const auto kernel =
      store::make_kernel(request.config.kernel_id, request.config.kernel_params);
  const store::FetchResult fetch =
      store_->get_or_compute(request.config, *kernel);
  auto sampler = std::make_shared<const field::KleFieldSampler>(
      *fetch.artifact, static_cast<std::size_t>(request.r), request.locations);
  // Charge: the gathered per-location KLE rows dominate (n_locations x r
  // doubles) plus per-location bookkeeping.
  const std::size_t bytes =
      request.locations.size() *
          (static_cast<std::size_t>(request.r) * sizeof(double) + 32) +
      1024;
  sampler_cache_.put(key, sampler, bytes);
  return sampler;
}

RunSstaReply Server::do_run_ssta(const RunSstaRequest& request,
                                 const Request& envelope) {
  ssta::ExperimentConfig config;
  config.circuit = request.circuit;
  config.num_samples = static_cast<std::size_t>(request.num_samples);
  config.r = static_cast<std::size_t>(request.r);
  config.num_eigenpairs = static_cast<std::size_t>(request.num_eigenpairs);
  config.mesh_area_fraction = request.mesh_area_fraction;
  config.kernel_c = request.kernel_c;
  config.seed = request.seed;
  config.num_threads = static_cast<std::size_t>(request.num_threads);
  config.store_root = options_.store_root;
  config.lease_ttl_ms = options_.lease_ttl_ms;
  config.mc_block_size = static_cast<std::size_t>(request.mc_block_size);
  config.mc_lease_blocks = static_cast<std::size_t>(request.mc_lease_blocks);
  if (request.distributed && request.run_id.empty())
    throw Error("run_ssta: distributed=1 requires a run_id (the lease table "
                "is registered and resumed under it)",
                ErrorCode::kPrecondition);

  // One pipeline (netlist, placement, STA engine) per distinct construction
  // config, shared across requests; run_kle calls are serialized per entry.
  store::ContentHasher h;
  h.update_string(config.circuit);
  h.update_u64(config.num_samples);
  h.update_double(config.mesh_area_fraction);
  h.update_double(config.kernel_c);
  h.update_u64(config.seed);
  h.update_u64(config.num_threads);
  h.update_u64(config.mc_block_size);
  h.update_u64(config.mc_lease_blocks);
  const std::uint64_t key = h.digest();

  std::shared_ptr<PipelineEntry> entry;
  {
    std::lock_guard<std::mutex> lock(pipeline_mu_);
    if (pipelines_.size() > 8) pipelines_.clear();  // in-use entries survive
    auto& slot = pipelines_[key];
    if (!slot) slot = std::make_shared<PipelineEntry>();
    entry = slot;
  }

  const std::size_t m =
      config.num_eigenpairs != 0
          ? config.num_eigenpairs
          : std::max<std::size_t>(2 * config.r, 50);

  std::lock_guard<std::mutex> entry_lock(entry->mu);
  if (!entry->pipeline)
    entry->pipeline = std::make_unique<ssta::ExperimentPipeline>(config);

  ssta::KleRunRequest run;
  run.r = config.r;
  run.num_eigenpairs = m;
  run.store = store_.get();
  run.run_id = request.run_id;
  run.resume = request.resume;
  const auto deadline = envelope.deadline;
  run.cancelled = [deadline] {
    if (robust::fault_injected(robust::FaultSite::kServeDeadline)) return true;
    return deadline.has_value() && Clock::now() > *deadline;
  };
  if (request.distributed) {
    // Register the run's live lease table for remote workers. The hook
    // fires twice from inside the checkpointed runner: once with the live
    // coordinator after ledger replay, once with nullptr before it is
    // destroyed (also on the exception path). Unregistration keeps the
    // entry, flipped to the terminal state, so late workers observe
    // kComplete rather than kUnknown.
    run.share_coordinator = [this, run_id = request.run_id, config, m](
                                ssta::LeaseCoordinator* coordinator,
                                const ssta::LedgerHeader* header) {
      if (coordinator != nullptr && header != nullptr) {
        auto dist = std::make_shared<DistRun>();
        dist->coordinator = coordinator;
        dist->header = *header;
        dist->config_hash = header->workload_key;
        dist->circuit = config.circuit;
        dist->seed = config.seed;
        dist->r = config.r;
        dist->num_eigenpairs = m;
        dist->mesh_area_fraction = config.mesh_area_fraction;
        dist->kernel_c = config.kernel_c;
        std::lock_guard<std::mutex> lock(dist_mu_);
        dist_runs_[run_id] = dist;  // a resumed run replaces its old entry
        obs::counter("sckl.ssta.mc.remote.runs_registered").add(1);
      } else {
        std::shared_ptr<DistRun> dist;
        {
          std::lock_guard<std::mutex> lock(dist_mu_);
          const auto it = dist_runs_.find(run_id);
          if (it != dist_runs_.end()) dist = it->second;
        }
        if (dist) {
          // Locking the entry's own mutex here is the lifetime fence: any
          // handler still using the coordinator holds it, so this blocks
          // until the pointer is safe to retire.
          std::lock_guard<std::mutex> lock(dist->mu);
          dist->coordinator = nullptr;
          dist->complete = true;
        }
      }
    };
  }
  const ssta::KleRunOutcome outcome = entry->pipeline->run_kle(run);

  RunSstaReply reply;
  reply.mean = outcome.ssta.worst_delay.mean();
  reply.sigma = outcome.ssta.worst_delay.stddev();
  if (outcome.ssta.worst_delay_sketch.count() > 0) {
    reply.p99 = outcome.ssta.worst_delay_sketch.quantile(0.99);
    reply.p999 = outcome.ssta.worst_delay_sketch.quantile(0.999);
  }
  reply.resumed_leases = outcome.mc_run.leases_resumed;
  reply.setup_seconds = outcome.setup_seconds;
  reply.sampling_seconds = outcome.ssta.sampling_seconds;
  reply.sta_seconds = outcome.ssta.sta_seconds;
  reply.total_seconds = outcome.ssta.total_seconds;
  reply.source = static_cast<std::uint32_t>(outcome.source);
  reply.mesh_triangles = outcome.mesh_triangles;
  reply.threads_used = outcome.ssta.threads_used;
  return reply;
}

std::shared_ptr<Server::DistRun> Server::find_dist_run(
    const std::string& run_id) {
  std::lock_guard<std::mutex> lock(dist_mu_);
  const auto it = dist_runs_.find(run_id);
  return it == dist_runs_.end() ? nullptr : it->second;
}

void Server::check_config_hash(const DistRun& run, std::uint64_t claimed) {
  if (claimed != 0 && claimed != run.config_hash)
    throw Error("distributed mc: worker config_hash " +
                    std::to_string(claimed) + " does not match this run's " +
                    std::to_string(run.config_hash) +
                    " — the worker is computing a different workload and "
                    "its partials must never reach the ledger",
                ErrorCode::kPrecondition);
}

ClaimLeasesReply Server::do_claim_leases(const ClaimLeasesRequest& request) {
  ClaimLeasesReply reply;
  if (request.worker_id == 0)
    throw Error("claim_leases: worker_id must be nonzero (0 is the "
                "coordinator's own claim marker)",
                ErrorCode::kPrecondition);
  const std::shared_ptr<DistRun> run = find_dist_run(request.run_id);
  if (!run) return reply;  // kUnknown
  std::lock_guard<std::mutex> lock(run->mu);
  check_config_hash(*run, request.config_hash);
  if (run->coordinator == nullptr) {
    reply.run_state = RunState::kComplete;
    return reply;
  }
  reply.run_state = RunState::kRunning;
  reply.config_hash = run->config_hash;
  reply.circuit = run->circuit;
  reply.seed = run->seed;
  reply.r = run->r;
  reply.num_eigenpairs = run->num_eigenpairs;
  reply.mesh_area_fraction = run->mesh_area_fraction;
  reply.kernel_c = run->kernel_c;
  reply.num_samples = run->header.num_samples;
  reply.block_size = run->header.block_size;
  reply.lease_blocks = run->header.lease_blocks;
  reply.mc_seed = run->header.seed;
  reply.sketch_capacity = run->header.sketch_capacity;
  reply.num_endpoints = run->header.num_endpoints;
  reply.lease_ttl_ms = options_.lease_ttl_ms;
  reply.heartbeat_interval_ms = options_.heartbeat_interval_ms;
  const std::size_t max_leases =
      std::max<std::size_t>(1, static_cast<std::size_t>(request.max_leases));
  for (const ssta::ClaimedLease& lease :
       run->coordinator->claim_remote(request.worker_id, max_leases)) {
    WireLease wire_lease;
    wire_lease.index = lease.index;
    wire_lease.first_block = lease.first_block;
    wire_lease.num_blocks = lease.num_blocks;
    reply.leases.push_back(wire_lease);
  }
  return reply;
}

PublishPartialReply Server::do_publish_partial(
    const PublishPartialRequest& request) {
  PublishPartialReply reply;
  const std::shared_ptr<DistRun> run = find_dist_run(request.run_id);
  if (!run) {
    // Not an error: a restarted coordinator daemon hasn't re-registered the
    // run yet. "Not accepted" makes the worker discard the partial and
    // claim again, which polls until the resumed run reappears.
    reply.accepted = false;
    return reply;
  }
  std::lock_guard<std::mutex> lock(run->mu);
  check_config_hash(*run, request.config_hash);
  if (run->coordinator == nullptr) {
    // Run already finished: the partial is redundant by construction (every
    // lease is Complete), so "not accepted" just tells the worker to claim
    // again and observe the terminal state.
    reply.accepted = false;
    return reply;
  }
  wire::ByteReader r(request.partial.data(), request.partial.size(),
                     ErrorCode::kProtocol, "publish_partial body");
  const ssta::detail::BlockPartial partial =
      ssta::detail::BlockPartial::decode(r);
  if (r.remaining() != 0)
    throw Error("publish_partial: trailing bytes after the encoded partial",
                ErrorCode::kProtocol);
  reply.accepted = run->coordinator->publish_remote(
      request.worker_id, static_cast<std::size_t>(request.lease.index),
      static_cast<std::size_t>(request.lease.first_block),
      static_cast<std::size_t>(request.lease.num_blocks), partial);
  return reply;
}

HeartbeatReply Server::do_heartbeat(const HeartbeatRequest& request) {
  HeartbeatReply reply;
  const std::shared_ptr<DistRun> run = find_dist_run(request.run_id);
  if (!run) return reply;  // kUnknown
  std::lock_guard<std::mutex> lock(run->mu);
  check_config_hash(*run, request.config_hash);
  if (run->coordinator == nullptr) {
    reply.run_state = RunState::kComplete;
    return reply;
  }
  reply.run_state = RunState::kRunning;
  reply.leases_extended = run->coordinator->heartbeat(request.worker_id);
  return reply;
}

RunStatusReply Server::do_run_status(const RunStatusRequest& request) {
  RunStatusReply reply;
  const std::shared_ptr<DistRun> run = find_dist_run(request.run_id);
  if (!run) return reply;  // kUnknown
  std::lock_guard<std::mutex> lock(run->mu);
  reply.config_hash = run->config_hash;
  const std::uint64_t blocks =
      run->header.block_size == 0
          ? 0
          : (run->header.num_samples + run->header.block_size - 1) /
                run->header.block_size;
  const std::uint64_t total =
      run->header.lease_blocks == 0
          ? 0
          : (blocks + run->header.lease_blocks - 1) / run->header.lease_blocks;
  reply.leases_total = total;
  if (run->coordinator == nullptr) {
    reply.run_state = RunState::kComplete;
    reply.leases_complete = total;
    return reply;
  }
  reply.run_state = RunState::kRunning;
  const ssta::LeaseProgress progress = run->coordinator->progress();
  reply.leases_total = progress.total;
  reply.leases_complete = progress.complete;
  reply.leases_claimed = progress.claimed;
  return reply;
}

void Server::send_payload(const Request& request,
                          const std::vector<std::uint8_t>& payload,
                          bool is_error) {
  obs::counter(is_error ? "sckl.serve.replies.error" : "sckl.serve.replies.ok")
      .add(1);
  try {
    wire::FrameHeader header;
    header.type = request.header.type;
    header.request_id = request.header.request_id;
    std::lock_guard<std::mutex> lock(request.conn->write_mu);
    wire::write_frame(request.conn->fd.get(), header, payload);
  } catch (const Error&) {
    // The peer disconnected before its reply; nothing sensible to do.
  }
}

void Server::reply_error(const Request& request, ErrorCode code,
                         const std::string& message) {
  send_payload(request, make_error_reply(code, message), /*is_error=*/true);
}

std::string Server::stats_json() {
  const store::StoreHealth health = store_->health();
  const store::CacheStats cache = store_->cache_stats();
  const store::CacheStats samplers = sampler_cache_.stats();
  std::size_t queue_depth = 0;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_depth = queue_.size();
  }

  std::string out = "{\n  \"schema\": \"sckl-serve-stats-v1\",\n";
#if defined(__unix__) || defined(__APPLE__)
  out += "  \"pid\": " + std::to_string(::getpid()) + ",\n";
#else
  out += "  \"pid\": 0,\n";
#endif
  out += "  \"queue_depth\": " + std::to_string(queue_depth) + ",\n";
  out += "  \"open_connections\": " + std::to_string(open_connections()) +
         ",\n";
  // Admission / hardening counters: how often the request caps fired and
  // how many connection readers have come and gone — the observable side of
  // the row-limit, reply-size, and connection-reaping defenses.
  out += "  \"admission\": {\n";
  append_kv(out, "requests", obs::counter("sckl.serve.requests").value());
  append_kv(out, "rejected_protocol",
            obs::counter("sckl.serve.rejected.protocol").value());
  append_kv(out, "rejected_overloaded",
            obs::counter("sckl.serve.rejected.overloaded").value());
  append_kv(out, "rejected_deadline",
            obs::counter("sckl.serve.rejected.deadline").value());
  append_kv(out, "rejected_row_limit",
            obs::counter("sckl.serve.rejected.row_limit").value());
  append_kv(out, "rejected_reply_bytes",
            obs::counter("sckl.serve.rejected.reply_bytes").value());
  append_kv(out, "connections_reaped",
            obs::counter("sckl.serve.connections_reaped").value(),
            /*comma=*/false);
  out += "  },\n";
  out += "  \"store_health\": {\n";
  append_kv(out, "read_retries", health.read_retries);
  append_kv(out, "write_retries", health.write_retries);
  append_kv(out, "failed_reads", health.failed_reads);
  append_kv(out, "failed_writes", health.failed_writes);
  append_kv(out, "quarantined", health.quarantined);
  append_kv(out, "deduped_solves", health.deduped_solves, /*comma=*/false);
  out += "  },\n";
  const auto cache_block = [&](const char* name, const store::CacheStats& s) {
    out += "  \"";
    out += name;
    out += "\": {\n";
    append_kv(out, "hits", s.hits);
    append_kv(out, "misses", s.misses);
    append_kv(out, "evictions", s.evictions);
    append_kv(out, "insertions", s.insertions);
    append_kv(out, "oversized_rejects", s.oversized_rejects);
    append_kv(out, "entries", s.entries);
    append_kv(out, "bytes", s.bytes);
    append_kv(out, "byte_budget", s.byte_budget, /*comma=*/false);
    out += "  },\n";
  };
  cache_block("store_cache", cache);
  cache_block("sampler_cache", samplers);
  out += "  \"metrics\": ";
  out += obs::metrics_json_array();
  out += "\n}\n";
  return out;
}

}  // namespace sckl::serve
