#include "serve/protocol.h"

#include "common/error.h"
#include "store/kle_io.h"

namespace sckl::serve {

namespace {

using wire::put_blob;
using wire::put_f64;
using wire::put_string;
using wire::put_u32;
using wire::put_u64;
using wire::put_u8;

}  // namespace

const char* to_string(MessageType type) {
  switch (type) {
    case MessageType::kHello: return "hello";
    case MessageType::kSolveKle: return "solve_kle";
    case MessageType::kSampleBlock: return "sample_block";
    case MessageType::kRunSsta: return "run_ssta";
    case MessageType::kStats: return "stats";
    case MessageType::kShutdown: return "shutdown";
    case MessageType::kClaimLeases: return "claim_leases";
    case MessageType::kPublishPartial: return "publish_partial";
    case MessageType::kHeartbeat: return "heartbeat";
    case MessageType::kRunStatus: return "run_status";
  }
  return "unknown";
}

bool known_message_type(std::uint32_t type) {
  return type >= static_cast<std::uint32_t>(MessageType::kHello) &&
         type <= static_cast<std::uint32_t>(MessageType::kRunStatus);
}

// --- requests --------------------------------------------------------------

void encode(std::vector<std::uint8_t>& out, const SolveKleRequest& request) {
  store::append_artifact_config(out, request.config);
  put_u8(out, request.want_artifact ? 1 : 0);
}

SolveKleRequest decode_solve_kle_request(wire::ByteReader& r) {
  SolveKleRequest request;
  request.config = store::read_artifact_config(r);
  request.want_artifact = r.u8() != 0;
  return request;
}

void encode(std::vector<std::uint8_t>& out, const SampleBlockRequest& request) {
  store::append_artifact_config(out, request.config);
  put_u64(out, request.r);
  put_u64(out, request.locations.size());
  for (const geometry::Point2& p : request.locations) {
    put_f64(out, p.x);
    put_f64(out, p.y);
  }
  put_u64(out, request.range.first);
  put_u64(out, request.range.count);
  put_u64(out, request.stream.seed);
  put_u64(out, request.stream.parameter_id);
}

SampleBlockRequest decode_sample_block_request(wire::ByteReader& r) {
  SampleBlockRequest request;
  request.config = store::read_artifact_config(r);
  request.r = r.u64();
  const std::uint64_t n = r.u64();
  r.need_count(n, 16, "sample locations");
  request.locations.resize(static_cast<std::size_t>(n));
  for (geometry::Point2& p : request.locations) {
    p.x = r.f64();
    p.y = r.f64();
  }
  request.range.first = r.u64();
  request.range.count = static_cast<std::size_t>(r.u64());
  request.stream.seed = r.u64();
  request.stream.parameter_id = r.u64();
  return request;
}

void encode(std::vector<std::uint8_t>& out, const RunSstaRequest& request) {
  put_string(out, request.circuit);
  put_u64(out, request.num_samples);
  put_u64(out, request.r);
  put_u64(out, request.num_eigenpairs);
  put_f64(out, request.mesh_area_fraction);
  put_f64(out, request.kernel_c);
  put_u64(out, request.seed);
  put_u64(out, request.num_threads);
  put_string(out, request.run_id);
  put_u8(out, request.resume ? 1 : 0);
  put_u8(out, request.distributed ? 1 : 0);
  put_u64(out, request.mc_block_size);
  put_u64(out, request.mc_lease_blocks);
}

RunSstaRequest decode_run_ssta_request(wire::ByteReader& r) {
  RunSstaRequest request;
  request.circuit = r.string();
  request.num_samples = r.u64();
  request.r = r.u64();
  request.num_eigenpairs = r.u64();
  request.mesh_area_fraction = r.f64();
  request.kernel_c = r.f64();
  request.seed = r.u64();
  request.num_threads = r.u64();
  request.run_id = r.string();
  request.resume = r.u8() != 0;
  request.distributed = r.u8() != 0;
  request.mc_block_size = r.u64();
  request.mc_lease_blocks = r.u64();
  return request;
}

void encode(std::vector<std::uint8_t>& out, const ClaimLeasesRequest& request) {
  put_string(out, request.run_id);
  put_u64(out, request.worker_id);
  put_u64(out, request.config_hash);
  put_u64(out, request.max_leases);
}

ClaimLeasesRequest decode_claim_leases_request(wire::ByteReader& r) {
  ClaimLeasesRequest request;
  request.run_id = r.string();
  request.worker_id = r.u64();
  request.config_hash = r.u64();
  request.max_leases = r.u64();
  return request;
}

void encode(std::vector<std::uint8_t>& out,
            const PublishPartialRequest& request) {
  put_string(out, request.run_id);
  put_u64(out, request.worker_id);
  put_u64(out, request.config_hash);
  put_u64(out, request.lease.index);
  put_u64(out, request.lease.first_block);
  put_u64(out, request.lease.num_blocks);
  put_blob(out, request.partial);
}

PublishPartialRequest decode_publish_partial_request(wire::ByteReader& r) {
  PublishPartialRequest request;
  request.run_id = r.string();
  request.worker_id = r.u64();
  request.config_hash = r.u64();
  request.lease.index = r.u64();
  request.lease.first_block = r.u64();
  request.lease.num_blocks = r.u64();
  request.partial = r.blob();
  return request;
}

void encode(std::vector<std::uint8_t>& out, const HeartbeatRequest& request) {
  put_string(out, request.run_id);
  put_u64(out, request.worker_id);
  put_u64(out, request.config_hash);
}

HeartbeatRequest decode_heartbeat_request(wire::ByteReader& r) {
  HeartbeatRequest request;
  request.run_id = r.string();
  request.worker_id = r.u64();
  request.config_hash = r.u64();
  return request;
}

void encode(std::vector<std::uint8_t>& out, const RunStatusRequest& request) {
  put_string(out, request.run_id);
}

RunStatusRequest decode_run_status_request(wire::ByteReader& r) {
  RunStatusRequest request;
  request.run_id = r.string();
  return request;
}

// --- replies ---------------------------------------------------------------

std::vector<std::uint8_t> make_error_reply(ErrorCode code,
                                           const std::string& message) {
  std::vector<std::uint8_t> out;
  // kGeneric is 0, which would collide with the success status word; shift
  // a genuinely-generic failure onto an out-of-enum value the client maps
  // back to kGeneric in check_reply_status().
  const auto status = static_cast<std::uint32_t>(code);
  put_u32(out, status != 0 ? status : 1000);
  put_string(out, message);
  return out;
}

std::vector<std::uint8_t> make_ok_reply() {
  std::vector<std::uint8_t> out;
  put_u32(out, 0);
  return out;
}

std::vector<std::uint8_t> encode_reply(const HelloReply& reply) {
  std::vector<std::uint8_t> out = make_ok_reply();
  put_u32(out, reply.protocol_version);
  put_string(out, reply.server);
  return out;
}

std::vector<std::uint8_t> encode_reply(const SolveKleReply& reply) {
  std::vector<std::uint8_t> out = make_ok_reply();
  put_u64(out, reply.key);
  put_u32(out, reply.source);
  put_f64(out, reply.seconds);
  put_u64(out, reply.mesh_triangles);
  put_u64(out, reply.num_eigenpairs);
  put_blob(out, reply.artifact);
  return out;
}

std::vector<std::uint8_t> encode_reply(const SampleBlockReply& reply) {
  std::vector<std::uint8_t> out = make_ok_reply();
  out.reserve(out.size() + 16 + reply.values.size() * 8);
  put_u64(out, reply.rows);
  put_u64(out, reply.cols);
  for (double v : reply.values) put_f64(out, v);
  return out;
}

std::vector<std::uint8_t> encode_reply(const RunSstaReply& reply) {
  std::vector<std::uint8_t> out = make_ok_reply();
  put_f64(out, reply.mean);
  put_f64(out, reply.sigma);
  put_f64(out, reply.p99);
  put_f64(out, reply.p999);
  put_f64(out, reply.setup_seconds);
  put_f64(out, reply.sampling_seconds);
  put_f64(out, reply.sta_seconds);
  put_f64(out, reply.total_seconds);
  put_u32(out, reply.source);
  put_u64(out, reply.mesh_triangles);
  put_u64(out, reply.threads_used);
  put_u64(out, reply.resumed_leases);
  return out;
}

std::vector<std::uint8_t> encode_reply(const StatsReply& reply) {
  std::vector<std::uint8_t> out = make_ok_reply();
  put_string(out, reply.json);
  return out;
}

std::vector<std::uint8_t> encode_reply(const ClaimLeasesReply& reply) {
  std::vector<std::uint8_t> out = make_ok_reply();
  put_u8(out, static_cast<std::uint8_t>(reply.run_state));
  if (reply.run_state != RunState::kRunning) return out;
  put_u64(out, reply.config_hash);
  put_string(out, reply.circuit);
  put_u64(out, reply.seed);
  put_u64(out, reply.r);
  put_u64(out, reply.num_eigenpairs);
  put_f64(out, reply.mesh_area_fraction);
  put_f64(out, reply.kernel_c);
  put_u64(out, reply.num_samples);
  put_u64(out, reply.block_size);
  put_u64(out, reply.lease_blocks);
  put_u64(out, reply.mc_seed);
  put_u64(out, reply.sketch_capacity);
  put_u64(out, reply.num_endpoints);
  put_u64(out, reply.lease_ttl_ms);
  put_u64(out, reply.heartbeat_interval_ms);
  put_u64(out, reply.leases.size());
  for (const WireLease& lease : reply.leases) {
    put_u64(out, lease.index);
    put_u64(out, lease.first_block);
    put_u64(out, lease.num_blocks);
  }
  return out;
}

std::vector<std::uint8_t> encode_reply(const PublishPartialReply& reply) {
  std::vector<std::uint8_t> out = make_ok_reply();
  put_u8(out, reply.accepted ? 1 : 0);
  return out;
}

std::vector<std::uint8_t> encode_reply(const HeartbeatReply& reply) {
  std::vector<std::uint8_t> out = make_ok_reply();
  put_u8(out, static_cast<std::uint8_t>(reply.run_state));
  put_u64(out, reply.leases_extended);
  return out;
}

std::vector<std::uint8_t> encode_reply(const RunStatusReply& reply) {
  std::vector<std::uint8_t> out = make_ok_reply();
  put_u8(out, static_cast<std::uint8_t>(reply.run_state));
  put_u64(out, reply.config_hash);
  put_u64(out, reply.leases_total);
  put_u64(out, reply.leases_complete);
  put_u64(out, reply.leases_claimed);
  return out;
}

void check_reply_status(wire::ByteReader& r) {
  const std::uint32_t status = r.u32();
  if (status == 0) return;
  const std::string message = r.string();
  // Statuses outside our enum (the shifted-generic sentinel, or codes from
  // a newer server) map back to kGeneric.
  ErrorCode code = ErrorCode::kGeneric;
  if (status <= static_cast<std::uint32_t>(ErrorCode::kDeadlineExceeded))
    code = static_cast<ErrorCode>(status);
  throw Error("serve: remote error: " + message, code);
}

HelloReply decode_hello_reply(wire::ByteReader& r) {
  check_reply_status(r);
  HelloReply reply;
  reply.protocol_version = r.u32();
  reply.server = r.string();
  return reply;
}

SolveKleReply decode_solve_kle_reply(wire::ByteReader& r) {
  check_reply_status(r);
  SolveKleReply reply;
  reply.key = r.u64();
  reply.source = r.u32();
  reply.seconds = r.f64();
  reply.mesh_triangles = r.u64();
  reply.num_eigenpairs = r.u64();
  reply.artifact = r.blob();
  return reply;
}

SampleBlockReply decode_sample_block_reply(wire::ByteReader& r) {
  check_reply_status(r);
  SampleBlockReply reply;
  reply.rows = r.u64();
  reply.cols = r.u64();
  // Bound each dimension before forming the product: hostile header values
  // must not wrap rows * cols past the bounds check. After cols passes,
  // cols * 8 <= remaining(), so the second check cannot overflow either.
  r.need_count(reply.cols, 8, "sample columns");
  if (reply.cols != 0)
    r.need_count(reply.rows, static_cast<std::size_t>(reply.cols) * 8,
                 "sample values");
  const std::uint64_t total = reply.cols != 0 ? reply.rows * reply.cols : 0;
  reply.values.resize(static_cast<std::size_t>(total));
  for (double& v : reply.values) v = r.f64();
  return reply;
}

RunSstaReply decode_run_ssta_reply(wire::ByteReader& r) {
  check_reply_status(r);
  RunSstaReply reply;
  reply.mean = r.f64();
  reply.sigma = r.f64();
  reply.p99 = r.f64();
  reply.p999 = r.f64();
  reply.setup_seconds = r.f64();
  reply.sampling_seconds = r.f64();
  reply.sta_seconds = r.f64();
  reply.total_seconds = r.f64();
  reply.source = r.u32();
  reply.mesh_triangles = r.u64();
  reply.threads_used = r.u64();
  reply.resumed_leases = r.u64();
  return reply;
}

StatsReply decode_stats_reply(wire::ByteReader& r) {
  check_reply_status(r);
  StatsReply reply;
  reply.json = r.string();
  return reply;
}

namespace {

RunState decode_run_state(wire::ByteReader& r) {
  const std::uint8_t raw = r.u8();
  if (raw > static_cast<std::uint8_t>(RunState::kComplete))
    throw Error("serve: invalid run state " + std::to_string(raw),
                ErrorCode::kProtocol);
  return static_cast<RunState>(raw);
}

}  // namespace

ClaimLeasesReply decode_claim_leases_reply(wire::ByteReader& r) {
  check_reply_status(r);
  ClaimLeasesReply reply;
  reply.run_state = decode_run_state(r);
  if (reply.run_state != RunState::kRunning) return reply;
  reply.config_hash = r.u64();
  reply.circuit = r.string();
  reply.seed = r.u64();
  reply.r = r.u64();
  reply.num_eigenpairs = r.u64();
  reply.mesh_area_fraction = r.f64();
  reply.kernel_c = r.f64();
  reply.num_samples = r.u64();
  reply.block_size = r.u64();
  reply.lease_blocks = r.u64();
  reply.mc_seed = r.u64();
  reply.sketch_capacity = r.u64();
  reply.num_endpoints = r.u64();
  reply.lease_ttl_ms = r.u64();
  reply.heartbeat_interval_ms = r.u64();
  const std::uint64_t count = r.u64();
  r.need_count(count, 24, "granted leases");
  reply.leases.resize(static_cast<std::size_t>(count));
  for (WireLease& lease : reply.leases) {
    lease.index = r.u64();
    lease.first_block = r.u64();
    lease.num_blocks = r.u64();
  }
  return reply;
}

PublishPartialReply decode_publish_partial_reply(wire::ByteReader& r) {
  check_reply_status(r);
  PublishPartialReply reply;
  reply.accepted = r.u8() != 0;
  return reply;
}

HeartbeatReply decode_heartbeat_reply(wire::ByteReader& r) {
  check_reply_status(r);
  HeartbeatReply reply;
  reply.run_state = decode_run_state(r);
  reply.leases_extended = r.u64();
  return reply;
}

RunStatusReply decode_run_status_reply(wire::ByteReader& r) {
  check_reply_status(r);
  RunStatusReply reply;
  reply.run_state = decode_run_state(r);
  reply.config_hash = r.u64();
  reply.leases_total = r.u64();
  reply.leases_complete = r.u64();
  reply.leases_claimed = r.u64();
  return reply;
}

}  // namespace sckl::serve
