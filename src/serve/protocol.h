// Message schemas of the sckl_serve wire protocol (version 3).
//
// Transport: every message is one frame (common/frame.h — "SCKF" magic,
// version, type, deadline, request id, payload, CRC). This header defines
// what goes *inside* the payload for each MessageType, using the same
// little-endian primitives as the on-disk artifact format (common/wire.h)
// and reusing store/kle_io's KleArtifactConfig codec verbatim, so a config
// is encoded identically on disk and on the wire.
//
// Request/reply pairing: a reply frame echoes the request's type and
// request id. Every reply payload starts with a u32 status — 0 for success
// followed by the type-specific body below, otherwise the sckl::ErrorCode
// of the failure followed by a diagnostic string. check_reply_status()
// rethrows such an error client-side with the original code, so a remote
// failure is indistinguishable from a local one to reaction code.
//
//   kHello        -> (empty)            <- u32 protocol version, string build
//   kSolveKle     -> artifact config, u8 want_artifact
//                 <- u64 key, u32 fetch source, f64 seconds, u64 triangles,
//                    u64 eigenpairs, blob artifact (empty unless requested)
//   kSampleBlock  -> artifact config, u64 r, locations (u64 n + 2n f64),
//                    range (u64 first, u64 count), stream (u64 seed, u64 id)
//                 <- u64 rows, u64 cols, rows*cols f64 row-major — the exact
//                    bits KleFieldSampler::sample_block produces locally
//   kRunSsta      -> string circuit, u64 num_samples, u64 r, u64 eigenpairs,
//                    f64 mesh_area_fraction, f64 kernel_c, u64 seed,
//                    u64 num_threads, string run_id, u8 resume
//                 <- f64 mean/sigma/p99/p999/setup/sampling/sta/total,
//                    u32 source, u64 triangles, u64 threads_used,
//                    u64 resumed_leases
//   kStats        -> (empty)            <- string JSON (sckl-serve-stats-v1)
//   kShutdown     -> (empty)            <- (empty); server then drains
//
// Distributed Monte Carlo (v3): a coordinator-side RunSsta with
// distributed=1 registers the run's live lease table; remote workers then
// drive it with the four messages below (see DESIGN.md §12 for the flow).
//   kClaimLeases  -> string run_id, u64 worker_id, u64 config_hash
//                    (0 = unknown yet), u64 max_leases
//                 <- u8 run_state (0 unknown / 1 running / 2 complete);
//                    when running: u64 config_hash, workload spec (string
//                    circuit, u64 seed, u64 r, u64 eigenpairs, f64
//                    mesh_area_fraction, f64 kernel_c), sampling geometry
//                    (u64 num_samples/block_size/lease_blocks/mc_seed/
//                    sketch_capacity/num_endpoints), u64 lease_ttl_ms, u64
//                    heartbeat_interval_ms, then u64 count leases of
//                    (u64 index, u64 first_block, u64 num_blocks)
//   kPublishPartial -> string run_id, u64 worker_id, u64 config_hash,
//                    u64 lease index/first_block/num_blocks, blob partial
//                    (ssta BlockPartial codec)
//                 <- u8 accepted (0 = lease expired / re-issued / run not
//                    currently live here: discard the partial, claim again)
//   kHeartbeat    -> string run_id, u64 worker_id, u64 config_hash
//                 <- u8 run_state, u64 leases_extended
//   kRunStatus    -> string run_id
//                 <- u8 run_state, u64 config_hash, u64 leases_total,
//                    u64 leases_complete, u64 leases_claimed
//
// A worker whose config_hash differs from the coordinator's gets a
// kPrecondition error reply — it is computing a different workload and its
// partials must never reach the ledger.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/frame.h"
#include "common/rng.h"
#include "common/wire.h"
#include "field/field_sampler.h"
#include "geometry/point2.h"
#include "store/key_hash.h"

namespace sckl::serve {

/// Frame type of every protocol message. Requests and replies share the
/// value; direction disambiguates.
enum class MessageType : std::uint32_t {
  kHello = 1,
  kSolveKle = 2,
  kSampleBlock = 3,
  kRunSsta = 4,
  kStats = 5,
  kShutdown = 6,
  kClaimLeases = 7,
  kPublishPartial = 8,
  kHeartbeat = 9,
  kRunStatus = 10,
};

/// Distributed-run lifecycle states carried in ClaimLeases / Heartbeat /
/// RunStatus replies.
enum class RunState : std::uint8_t {
  kUnknown = 0,   // no live coordinator registered under that run_id
  kRunning = 1,
  kComplete = 2,  // the coordinator finished the run on this daemon
};

/// Stable lowercase name ("hello", "solve_kle", ...); "unknown" otherwise.
const char* to_string(MessageType type);

/// True for the message types this build understands.
bool known_message_type(std::uint32_t type);

// --- requests --------------------------------------------------------------

struct SolveKleRequest {
  store::KleArtifactConfig config;
  bool want_artifact = false;  // return the full encoded .sckl artifact
};

struct SampleBlockRequest {
  store::KleArtifactConfig config;           // which KLE to sample from
  std::uint64_t r = 25;                      // truncation
  std::vector<geometry::Point2> locations;   // sample locations on the die
  field::SampleRange range;                  // global sample index range
  StreamKey stream;                          // parameter stream
};

struct RunSstaRequest {
  std::string circuit = "c880";
  std::uint64_t num_samples = 200;
  std::uint64_t r = 25;
  std::uint64_t num_eigenpairs = 0;       // 0 = max(2r, 50), as ExperimentConfig
  double mesh_area_fraction = 0.001;
  double kernel_c = 0.0;                  // 0 = the paper's fitted value
  std::uint64_t seed = 1;
  std::uint64_t num_threads = 0;          // 0 = server default
  /// Non-empty: run through the checkpointed Monte Carlo runner, keeping a
  /// durable run ledger under the server's store root (requires the server
  /// to have a store). resume continues an interrupted run's ledger.
  std::string run_id;
  bool resume = false;
  /// Run as a distributed coordinator: register the lease table for remote
  /// ClaimLeases/PublishPartial workers and degrade to local compute only
  /// when they go quiet. Requires a non-empty run_id.
  bool distributed = false;
  /// Checkpointing geometry overrides (0 = the McSstaOptions/McRunOptions
  /// defaults). Part of the ledger header, so they must match on resume.
  std::uint64_t mc_block_size = 0;
  std::uint64_t mc_lease_blocks = 0;
};

/// ClaimLeases: a worker asks the coordinator daemon for up to max_leases
/// available leases of run_id. config_hash 0 means "not known yet" (the
/// first claim, before the worker has built its pipeline) — the reply's
/// spec + config_hash let it build one; any later mismatch is kPrecondition.
struct ClaimLeasesRequest {
  std::string run_id;
  std::uint64_t worker_id = 0;
  std::uint64_t config_hash = 0;
  std::uint64_t max_leases = 1;
};

/// One lease granted to a remote worker.
struct WireLease {
  std::uint64_t index = 0;
  std::uint64_t first_block = 0;
  std::uint64_t num_blocks = 0;
};

struct ClaimLeasesReply {
  RunState run_state = RunState::kUnknown;
  // Everything below is only present (and only encoded) when kRunning.
  std::uint64_t config_hash = 0;
  // Workload spec — enough for a worker to rebuild the pipeline.
  std::string circuit;
  std::uint64_t seed = 0;              // ExperimentConfig seed (not MC seed)
  std::uint64_t r = 0;
  std::uint64_t num_eigenpairs = 0;    // resolved m, never 0
  double mesh_area_fraction = 0.0;
  double kernel_c = 0.0;               // coordinator's config value verbatim
                                       // (0 = the paper's fit); part of the
                                       // workload hash, so never re-derived
  // Sampling geometry, verbatim from the run's LedgerHeader. Workers use
  // these values directly — re-deriving any of them risks bit divergence.
  std::uint64_t num_samples = 0;
  std::uint64_t block_size = 0;
  std::uint64_t lease_blocks = 0;
  std::uint64_t mc_seed = 0;
  std::uint64_t sketch_capacity = 0;
  std::uint64_t num_endpoints = 0;
  std::uint64_t lease_ttl_ms = 0;
  std::uint64_t heartbeat_interval_ms = 0;
  std::vector<WireLease> leases;       // may be empty: nothing claimable now
};

struct PublishPartialRequest {
  std::string run_id;
  std::uint64_t worker_id = 0;
  std::uint64_t config_hash = 0;
  WireLease lease;
  std::vector<std::uint8_t> partial;   // ssta::detail::BlockPartial codec
};

struct PublishPartialReply {
  bool accepted = false;  // false: lease expired/re-issued — claim again
};

struct HeartbeatRequest {
  std::string run_id;
  std::uint64_t worker_id = 0;
  std::uint64_t config_hash = 0;
};

struct HeartbeatReply {
  RunState run_state = RunState::kUnknown;
  std::uint64_t leases_extended = 0;
};

struct RunStatusRequest {
  std::string run_id;
};

struct RunStatusReply {
  RunState run_state = RunState::kUnknown;
  std::uint64_t config_hash = 0;
  std::uint64_t leases_total = 0;
  std::uint64_t leases_complete = 0;
  std::uint64_t leases_claimed = 0;
};

// --- replies ---------------------------------------------------------------

struct HelloReply {
  std::uint32_t protocol_version = wire::kProtocolVersion;
  std::string server;  // human-readable build identification
};

struct SolveKleReply {
  std::uint64_t key = 0;              // content-hash key of the artifact
  std::uint32_t source = 0;           // store::FetchSource as u32
  double seconds = 0.0;               // server-side fetch wall time
  std::uint64_t mesh_triangles = 0;
  std::uint64_t num_eigenpairs = 0;
  std::vector<std::uint8_t> artifact; // encode_kle bytes; empty unless asked
};

struct SampleBlockReply {
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  std::vector<double> values;  // row-major, rows*cols entries
};

struct RunSstaReply {
  double mean = 0.0;
  double sigma = 0.0;
  /// Tail quantiles of the worst-delay distribution, from the mergeable
  /// quantile sketch (exact while num_samples <= the sketch capacity).
  double p99 = 0.0;
  double p999 = 0.0;
  double setup_seconds = 0.0;
  double sampling_seconds = 0.0;
  double sta_seconds = 0.0;
  double total_seconds = 0.0;
  std::uint32_t source = 0;      // store::FetchSource as u32
  std::uint64_t mesh_triangles = 0;
  std::uint64_t threads_used = 0;
  std::uint64_t resumed_leases = 0;  // checkpointed runs: leases from ledger
};

struct StatsReply {
  std::string json;  // sckl-serve-stats-v1 document
};

// --- request codecs --------------------------------------------------------
// encode_* append the payload body to `out`; decode_* consume a ByteReader
// (construct it with ErrorCode::kProtocol so malformed payloads surface as
// typed protocol errors, never as crashes).

void encode(std::vector<std::uint8_t>& out, const SolveKleRequest& request);
void encode(std::vector<std::uint8_t>& out, const SampleBlockRequest& request);
void encode(std::vector<std::uint8_t>& out, const RunSstaRequest& request);
void encode(std::vector<std::uint8_t>& out, const ClaimLeasesRequest& request);
void encode(std::vector<std::uint8_t>& out,
            const PublishPartialRequest& request);
void encode(std::vector<std::uint8_t>& out, const HeartbeatRequest& request);
void encode(std::vector<std::uint8_t>& out, const RunStatusRequest& request);

SolveKleRequest decode_solve_kle_request(wire::ByteReader& r);
SampleBlockRequest decode_sample_block_request(wire::ByteReader& r);
RunSstaRequest decode_run_ssta_request(wire::ByteReader& r);
ClaimLeasesRequest decode_claim_leases_request(wire::ByteReader& r);
PublishPartialRequest decode_publish_partial_request(wire::ByteReader& r);
HeartbeatRequest decode_heartbeat_request(wire::ByteReader& r);
RunStatusRequest decode_run_status_request(wire::ByteReader& r);

// --- reply codecs ----------------------------------------------------------
// Success payloads carry the leading status word; build with make_ok_reply /
// the typed encoders, or make_error_reply for failures.

/// Payload of a failure reply: nonzero status (the ErrorCode) + message.
std::vector<std::uint8_t> make_error_reply(ErrorCode code,
                                           const std::string& message);

/// Payload of an empty success reply (hello body appended separately, etc.).
std::vector<std::uint8_t> make_ok_reply();

std::vector<std::uint8_t> encode_reply(const HelloReply& reply);
std::vector<std::uint8_t> encode_reply(const SolveKleReply& reply);
std::vector<std::uint8_t> encode_reply(const SampleBlockReply& reply);
std::vector<std::uint8_t> encode_reply(const RunSstaReply& reply);
std::vector<std::uint8_t> encode_reply(const StatsReply& reply);
std::vector<std::uint8_t> encode_reply(const ClaimLeasesReply& reply);
std::vector<std::uint8_t> encode_reply(const PublishPartialReply& reply);
std::vector<std::uint8_t> encode_reply(const HeartbeatReply& reply);
std::vector<std::uint8_t> encode_reply(const RunStatusReply& reply);

/// Reads the status word; on a nonzero status reads the message and throws
/// sckl::Error carrying the server's original ErrorCode.
void check_reply_status(wire::ByteReader& r);

HelloReply decode_hello_reply(wire::ByteReader& r);
SolveKleReply decode_solve_kle_reply(wire::ByteReader& r);
SampleBlockReply decode_sample_block_reply(wire::ByteReader& r);
RunSstaReply decode_run_ssta_reply(wire::ByteReader& r);
StatsReply decode_stats_reply(wire::ByteReader& r);
ClaimLeasesReply decode_claim_leases_reply(wire::ByteReader& r);
PublishPartialReply decode_publish_partial_reply(wire::ByteReader& r);
HeartbeatReply decode_heartbeat_reply(wire::ByteReader& r);
RunStatusReply decode_run_status_reply(wire::ByteReader& r);

}  // namespace sckl::serve
