#include "serve/worker.h"

#include <chrono>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "common/error.h"
#include "field/kle_sampler.h"
#include "obs/metrics.h"
#include "obs/stopwatch.h"
#include "obs/trace.h"
#include "robust/fault_injection.h"
#include "serve/client.h"
#include "ssta/experiment.h"
#include "ssta/mc_ssta.h"
#include "store/kle_io.h"

namespace sckl::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// The workload a worker reconstructed from a ClaimLeases reply: the exact
/// pipeline + sampler + options needed to make lease partials whose bits
/// match the coordinator's own compute path.
struct Workload {
  std::uint64_t config_hash = 0;
  std::unique_ptr<ssta::ExperimentPipeline> pipeline;
  std::unique_ptr<field::KleFieldSampler> sampler;
  ssta::McSstaOptions mc;
  std::size_t num_endpoints = 0;
  std::uint64_t lease_ttl_ms = 0;
  std::uint64_t heartbeat_interval_ms = 0;
};

/// One worker session: the connection, the retry wrapper, and the
/// telemetry. Kept as a struct so the RPC lambdas stay small.
struct Session {
  const WorkerOptions& options;
  WorkerReport& report;
  std::optional<Client> client;

  Client& connected() {
    if (!client.has_value()) {
      client = options.unix_path.empty()
                   ? Client::connect_tcp(options.tcp_port)
                   : Client::connect_unix(options.unix_path);
      client->set_rpc_timeout_ms(options.rpc_timeout_ms);
      client->set_deadline_ms(
          static_cast<std::uint32_t>(options.rpc_timeout_ms));
    }
    return *client;
  }

  /// Runs one RPC under the bounded/jittered retry policy, reconnecting on
  /// transport-level failures (kIoTransient, kDeadlineExceeded). Typed
  /// server errors (kPrecondition and friends) propagate immediately —
  /// they describe the request, not the transport.
  template <typename Fn>
  auto rpc(Fn&& fn) -> decltype(fn(std::declval<Client&>())) {
    robust::RetryStats stats;
    const auto result = robust::retry_bounded(
        options.rpc_retry,
        [&]() -> decltype(fn(std::declval<Client&>())) {
          if (robust::fault_injected(robust::FaultSite::kMcRpcTransient)) {
            client.reset();
            throw Error(
                "injected transport failure at fault site 'mc_rpc_transient'",
                ErrorCode::kIoTransient);
          }
          try {
            return fn(connected());
          } catch (const Error& e) {
            if (e.code() == ErrorCode::kIoTransient ||
                e.code() == ErrorCode::kDeadlineExceeded) {
              // The connection is in an unknown state (half-written frame,
              // stale reply in flight): drop it so the retry reconnects.
              client.reset();
              obs::counter("sckl.ssta.mc.remote.worker_reconnects").add(1);
            }
            throw;
          }
        },
        [](const Error& e) {
          return e.code() == ErrorCode::kIoTransient ||
                 e.code() == ErrorCode::kDeadlineExceeded;
        },
        &stats);
    report.rpc_retries += static_cast<std::size_t>(stats.retried);
    return result;
  }
};

/// Builds the workload from a kRunning ClaimLeases reply. Every value is
/// used verbatim — re-deriving any of them (the MC seed, the resolved
/// eigenpair count...) risks silently computing different bits than the
/// coordinator.
Workload build_workload(Session& session, const ClaimLeasesReply& spec) {
  Workload w;
  w.config_hash = spec.config_hash;
  w.lease_ttl_ms = spec.lease_ttl_ms;
  w.heartbeat_interval_ms = spec.heartbeat_interval_ms;

  ssta::ExperimentConfig config;
  config.circuit = spec.circuit;
  config.seed = spec.seed;
  config.r = static_cast<std::size_t>(spec.r);
  config.num_eigenpairs = static_cast<std::size_t>(spec.num_eigenpairs);
  config.mesh_area_fraction = spec.mesh_area_fraction;
  config.kernel_c = spec.kernel_c;
  config.num_samples = static_cast<std::size_t>(spec.num_samples);
  w.pipeline = std::make_unique<ssta::ExperimentPipeline>(config);

  // The KLE comes over the wire (want_artifact), not from a shared
  // filesystem: the worker may be on another machine entirely.
  SolveKleRequest solve;
  solve.config =
      w.pipeline->artifact_config(static_cast<std::size_t>(spec.num_eigenpairs));
  solve.want_artifact = true;
  const SolveKleReply solved =
      session.rpc([&](Client& c) { return c.solve_kle(solve); });
  const store::StoredKleResult stored = store::decode_kle(solved.artifact);
  w.sampler = std::make_unique<field::KleFieldSampler>(
      stored, static_cast<std::size_t>(spec.r), w.pipeline->gate_locations());

  w.num_endpoints = static_cast<std::size_t>(spec.num_endpoints);
  if (w.pipeline->engine().num_endpoints() != w.num_endpoints)
    throw Error("mc worker: rebuilt pipeline has " +
                    std::to_string(w.pipeline->engine().num_endpoints()) +
                    " endpoints but the coordinator's run has " +
                    std::to_string(w.num_endpoints) +
                    " — the workload spec did not reproduce the circuit",
                ErrorCode::kPrecondition);

  w.mc.num_samples = static_cast<std::size_t>(spec.num_samples);
  w.mc.block_size = static_cast<std::size_t>(spec.block_size);
  w.mc.seed = spec.mc_seed;
  w.mc.sketch_capacity = static_cast<std::size_t>(spec.sketch_capacity);
  w.mc.num_threads = 1;
  return w;
}

}  // namespace

WorkerReport run_worker(const WorkerOptions& options) {
  require(!options.run_id.empty(), "mc worker: run_id is required");
  require(options.rpc_timeout_ms > 0, "mc worker: rpc_timeout_ms must be > 0");
  require(options.max_leases_per_claim >= 1,
          "mc worker: max_leases_per_claim must be >= 1");

  WorkerReport report;
#if defined(__unix__) || defined(__APPLE__)
  report.worker_id = options.worker_id != 0
                         ? options.worker_id
                         : static_cast<std::uint64_t>(::getpid());
#else
  report.worker_id = options.worker_id;
#endif
  require(report.worker_id != 0, "mc worker: worker_id must be nonzero");

  obs::Span worker_span("serve.mc_worker");
  worker_span.set_tag(report.worker_id);
  obs::counter("sckl.ssta.mc.remote.workers").add(1);
  obs::Stopwatch runtime;

  Session session{options, report, std::nullopt};
  std::optional<Workload> workload;

  const auto out_of_budget = [&] {
    return options.max_runtime_seconds > 0.0 &&
           runtime.seconds() > options.max_runtime_seconds;
  };

  while (!out_of_budget()) {
    ClaimLeasesRequest claim;
    claim.run_id = options.run_id;
    claim.worker_id = report.worker_id;
    claim.config_hash = workload.has_value() ? workload->config_hash : 0;
    claim.max_leases = options.max_leases_per_claim;
    const ClaimLeasesReply granted =
        session.rpc([&](Client& c) { return c.claim_leases(claim); });

    if (granted.run_state == RunState::kComplete) {
      report.run_complete = true;
      break;
    }
    if (granted.run_state == RunState::kUnknown) {
      // The coordinator may simply not have started (or restarted) yet.
      std::this_thread::sleep_for(std::chrono::milliseconds(options.poll_ms));
      continue;
    }
    if (!workload.has_value()) workload = build_workload(session, granted);
    if (granted.leases.empty()) {
      // Everything claimable is held by live claimers; wait for reclaims.
      std::this_thread::sleep_for(std::chrono::milliseconds(options.poll_ms));
      continue;
    }

    const ssta::ParameterSamplers samplers{
        workload->sampler.get(), workload->sampler.get(),
        workload->sampler.get(), workload->sampler.get()};
    const auto heartbeat_every =
        std::chrono::milliseconds(workload->heartbeat_interval_ms);
    Clock::time_point last_heartbeat = Clock::now();

    ssta::detail::BlockScratch scratch;
    bool run_live = true;
    for (const WireLease& lease : granted.leases) {
      if (!run_live) break;  // terminal state seen mid-batch: stop computing
      obs::Span lease_span("serve.mc_worker.lease");
      lease_span.set_tag(lease.index);
      if (robust::fault_injected(robust::FaultSite::kMcWorkerStall)) {
        // A stalled worker: sleep through the whole TTL without a single
        // heartbeat. The coordinator reclaims the lease; the publish below
        // comes back rejected and the partial is discarded.
        std::this_thread::sleep_for(std::chrono::milliseconds(
            workload->lease_ttl_ms + workload->lease_ttl_ms / 4 + 1));
      }

      ssta::detail::BlockPartial lease_partial;
      lease_partial.worst_delay_sketch =
          QuantileSketch(workload->mc.sketch_capacity);
      ssta::detail::BlockPartial block_partial;
      for (std::uint64_t b = 0; b < lease.num_blocks; ++b) {
        robust::crash_point(robust::FaultSite::kMcWorkerCrash);
        if (Clock::now() - last_heartbeat >= heartbeat_every) {
          HeartbeatRequest hb;
          hb.run_id = options.run_id;
          hb.worker_id = report.worker_id;
          hb.config_hash = workload->config_hash;
          const HeartbeatReply pulse =
              session.rpc([&](Client& c) { return c.heartbeat(hb); });
          ++report.heartbeats;
          obs::counter("sckl.ssta.mc.remote.worker_heartbeats").add(1);
          last_heartbeat = Clock::now();
          if (pulse.run_state != RunState::kRunning) {
            run_live = false;  // finished or restarting: discard this lease
            break;
          }
        }
        block_partial = ssta::detail::BlockPartial{};
        ssta::detail::compute_block_partial(
            workload->pipeline->engine(), samplers, workload->mc,
            static_cast<std::size_t>(lease.first_block + b),
            workload->num_endpoints, scratch, block_partial, nullptr);
        lease_partial.merge(block_partial);
        ++report.blocks_computed;
      }

      if (!run_live) break;  // the partial is incomplete; never publish it
      PublishPartialRequest publish;
      publish.run_id = options.run_id;
      publish.worker_id = report.worker_id;
      publish.config_hash = workload->config_hash;
      publish.lease = lease;
      lease_partial.encode(publish.partial);
      const PublishPartialReply outcome =
          session.rpc([&](Client& c) { return c.publish_partial(publish); });
      if (outcome.accepted) {
        ++report.leases_computed;
        obs::counter("sckl.ssta.mc.remote.worker_published").add(1);
      } else {
        ++report.publishes_rejected;
        obs::counter("sckl.ssta.mc.remote.worker_rejected").add(1);
      }
    }
  }
  return report;
}

}  // namespace sckl::serve
