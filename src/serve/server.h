// The sckl_serve daemon core: a long-running KLE/SSTA server.
//
// The paper's "decompose once, sample forever" economics only pay off when
// many consumers share the decompositions. The artifact store (src/store)
// already shares them across *processes* on one filesystem; this server
// shares them across *clients* of one resident process: a single
// KleArtifactStore + in-memory LRU stays hot for the process lifetime, and
// remote clients reach it over a unix-domain socket (optionally loopback
// TCP) speaking the framed protocol of serve/protocol.h.
//
// Architecture (all pieces reuse existing subsystems — nothing here solves,
// samples, or times anything itself):
//
//   accept threads   one per listener; poll + accept, spawn a connection
//                    thread per client. Fault site `serve_accept` drops the
//                    next accepted connection on the floor.
//   connection       reads frames, validates version/type/payload (typed
//   threads          error replies on anything malformed — protocol errors
//                    never crash the daemon or kill the connection), parses
//                    the request body, and enqueues a work item. Fault site
//                    `serve_read` turns the next successfully read frame
//                    into a transient-I/O error reply. Readers are detached
//                    and reap themselves on disconnect: the Connection
//                    leaves the registry immediately and its fd closes with
//                    the last shared_ptr, so a daemon serving short-lived
//                    connections never accumulates fds or thread handles.
//   request queue    bounded (ServerOptions::max_queue): admission control.
//                    A full queue rejects immediately with kOverloaded —
//                    predictable backpressure instead of unbounded latency.
//   worker pool      one common/ThreadPool (the same pool type the MC-SSTA
//                    engine uses) runs every request. Workers pop from the
//                    queue; compatible concurrent SampleBlock requests for
//                    the same (KLE key, r, locations) are drained together
//                    and served from one sampler construction (batching).
//   deadlines        per-request (frame header deadline_ms, else the server
//                    default). Checked before execution, between sample
//                    chunks, and between Monte Carlo blocks (the cancelled
//                    callback of McSstaOptions); an expired request gets a
//                    typed kDeadlineExceeded reply. Fault site
//                    `serve_deadline` forces the next check to report
//                    expiry, deterministically.
//
// Determinism: SampleBlock replies are generated with the same stateless
// index-addressed samplers as local code, so the returned doubles are
// bit-identical to a local sample_block for the same (key, range, stream) —
// regardless of batching, chunking, or which worker served the request.
//
// Graceful shutdown: stop() (or a SIGTERM via serve/daemon.h) stops
// accepting, drains queued + in-flight requests bounded by drain_ms,
// replies kOverloaded to anything still queued after the budget, joins all
// threads, and removes the unix socket path.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/socket.h"
#include "field/kle_sampler.h"
#include "serve/protocol.h"
#include "ssta/experiment.h"
#include "ssta/lease_ledger.h"
#include "store/artifact_store.h"

namespace sckl::serve {

/// Tuning knobs of one Server.
struct ServerOptions {
  /// Unix-domain socket path to listen on; empty = no unix listener.
  std::string unix_path;
  /// Additionally listen on loopback TCP (port 0 = ephemeral; the bound
  /// port is available from Server::tcp_port() after start()).
  bool tcp = false;
  std::uint16_t tcp_port = 0;

  /// Root of the process-wide artifact store (required).
  std::string store_root;
  std::size_t store_cache_bytes = std::size_t{256} << 20;

  /// Worker threads executing requests: 0 = auto (SCKL_THREADS / cores).
  std::size_t num_threads = 0;
  /// Admission control: queued-request bound. Excess is rejected with
  /// kOverloaded instead of queueing unboundedly.
  std::size_t max_queue = 64;
  /// Largest request payload accepted; a bigger declared length is a
  /// protocol error (and never a giant allocation). Replies obey the same
  /// bound: a SampleBlock whose reply would exceed it is rejected at
  /// decode time.
  std::size_t max_payload_bytes = std::size_t{64} << 20;
  /// Largest SampleBlock row count accepted per request; bigger requests
  /// are rejected with kPrecondition at decode time, before a worker
  /// reserves rows x locations x 8 bytes for the reply. Split larger
  /// draws across requests (chunking is bit-transparent).
  std::size_t max_sample_rows = std::size_t{1} << 20;
  /// Deadline applied to requests that do not carry one (0 = none).
  /// Nonzero by default so a runaway request can never pin a worker
  /// forever, which would also make stop() overshoot drain_ms.
  std::uint32_t default_deadline_ms = 30'000;

  /// Max SampleBlock requests fused into one batch (1 = batching off).
  std::size_t batch_limit = 8;
  /// How long a worker holding one SampleBlock waits for co-batchable
  /// requests to arrive before running alone (0 = do not wait; batching
  /// then only fuses requests that are already queued).
  int batch_window_ms = 0;
  /// LRU byte budget for constructed KleFieldSamplers, keyed by
  /// (artifact key, r, locations).
  std::size_t sampler_cache_bytes = std::size_t{64} << 20;
  /// Rows generated between deadline checks inside one SampleBlock.
  std::size_t sample_chunk_rows = 2048;

  /// Graceful-shutdown budget for draining queued + in-flight requests.
  int drain_ms = 2000;
  /// Identification string returned by Hello.
  std::string server_name = "sckl_serve/1";

  /// Distributed Monte Carlo (v3): lease time-to-live handed to remote
  /// workers, and the heartbeat cadence the ClaimLeases reply advertises.
  /// The constructor enforces heartbeat_interval_ms * 3 < lease_ttl_ms so a
  /// healthy worker always gets at least two extension opportunities before
  /// its leases can be reclaimed.
  std::uint64_t lease_ttl_ms = 300'000;
  std::uint64_t heartbeat_interval_ms = 1'000;
};

/// One running server instance. start() spawns the listener/worker threads
/// and returns; stop() drains and joins everything (also run by the dtor).
class Server {
 public:
  explicit Server(const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listeners and spawns accept + worker threads. Throws on bind
  /// failure. Clients may connect as soon as this returns.
  void start();

  /// Graceful shutdown: stop accepting, drain bounded by drain_ms, reply
  /// kOverloaded to anything still queued, join all threads, unlink the
  /// unix socket. Idempotent; also invoked by the destructor.
  void stop();

  /// Asks the owner's event loop to shut down (set by a kShutdown request
  /// or a signal handler's notify). Does not itself stop the server —
  /// whoever owns the Server observes this and calls stop().
  void request_stop();
  bool stop_requested() const {
    return stop_requested_.load(std::memory_order_relaxed);
  }
  /// Blocks up to timeout_ms for request_stop(); true when requested.
  bool wait_for_stop_request(int timeout_ms);

  /// Bound TCP port (0 when TCP is disabled); valid after start().
  std::uint16_t tcp_port() const { return bound_tcp_port_; }

  const ServerOptions& options() const { return options_; }

  /// The process-wide artifact store (tests read health()/cache_stats()).
  store::KleArtifactStore& store() { return *store_; }

  /// Counters of the constructed-sampler LRU (bench/tests read hit_rate()).
  store::CacheStats sampler_cache_stats() const {
    return sampler_cache_.stats();
  }

  /// Currently registered client connections (disconnected clients leave
  /// immediately; the leak test polls this toward zero).
  std::size_t open_connections() const {
    std::lock_guard<std::mutex> lock(conn_mu_);
    return connections_.size();
  }

  /// The sckl-serve-stats-v1 document served by kStats: store health +
  /// cache stats + sampler-cache stats + the sckl.* metrics registry.
  std::string stats_json();

 private:
  /// Per-client connection state shared between its reader thread and the
  /// workers replying on it.
  struct Connection {
    net::Fd fd;
    std::mutex write_mu;  // one reply frame at a time
  };

  /// A parsed, admitted request waiting for (or being run by) a worker.
  struct Request {
    std::shared_ptr<Connection> conn;
    wire::FrameHeader header;
    MessageType type = MessageType::kHello;
    std::optional<std::chrono::steady_clock::time_point> deadline;
    // Exactly the member matching `type` is populated.
    std::optional<SolveKleRequest> solve;
    std::optional<SampleBlockRequest> sample;
    std::optional<RunSstaRequest> ssta;
    std::optional<ClaimLeasesRequest> claim;
    std::optional<PublishPartialRequest> publish;
    std::optional<HeartbeatRequest> heartbeat;
    std::optional<RunStatusRequest> status;
    std::uint64_t batch_key = 0;  // SampleBlock: sampler identity hash
  };

  /// A cached, mutex-serialized SSTA pipeline (one per distinct config).
  struct PipelineEntry {
    std::mutex mu;
    std::unique_ptr<ssta::ExperimentPipeline> pipeline;
  };

  /// One distributed run's registry entry. The LeaseCoordinator lives on
  /// the coordinating RunSsta worker's stack (inside run_kle); this entry
  /// borrows it for the run's duration. `coordinator` is only touched under
  /// `mu`, and the share hook nulls it (still under `mu`) before the
  /// coordinator is destroyed — a claim/publish/heartbeat handler holding
  /// the shared_ptr either sees a live pointer and finishes before the
  /// unregister can proceed, or sees nullptr and answers from the terminal
  /// state. The spec fields are copies, valid for the entry's lifetime.
  struct DistRun {
    std::mutex mu;
    ssta::LeaseCoordinator* coordinator = nullptr;
    ssta::LedgerHeader header;      // sampling geometry, verbatim
    std::uint64_t config_hash = 0;  // == header.workload_key
    // Workload spec a worker needs to rebuild the pipeline.
    std::string circuit;
    std::uint64_t seed = 0;           // ExperimentConfig seed
    std::uint64_t r = 0;
    std::uint64_t num_eigenpairs = 0;  // resolved m
    double mesh_area_fraction = 0.0;
    double kernel_c = 0.0;
    bool complete = false;  // coordinator finished and unregistered
  };

  void accept_loop(int listen_fd);
  void connection_loop(std::shared_ptr<Connection> conn);
  void worker_loop();

  /// Queues the request; false when the queue is full or draining.
  bool enqueue(Request&& request);

  /// True when the request's deadline has passed (or the serve_deadline
  /// fault site injects an expiry).
  static bool deadline_expired(const Request& request);

  void execute(Request& request);
  void execute_sample_batch(std::vector<Request>& batch);
  SolveKleReply do_solve(const SolveKleRequest& request);
  RunSstaReply do_run_ssta(const RunSstaRequest& request,
                           const Request& envelope);
  ClaimLeasesReply do_claim_leases(const ClaimLeasesRequest& request);
  PublishPartialReply do_publish_partial(const PublishPartialRequest& request);
  HeartbeatReply do_heartbeat(const HeartbeatRequest& request);
  RunStatusReply do_run_status(const RunStatusRequest& request);

  /// Looks up a registered distributed run (nullptr when unknown). The
  /// caller must lock the entry's own mutex before touching `coordinator`.
  std::shared_ptr<DistRun> find_dist_run(const std::string& run_id);
  /// Validates the worker's config_hash against the run's (0 = not known
  /// yet, always accepted); throws kPrecondition on mismatch.
  static void check_config_hash(const DistRun& run, std::uint64_t claimed);
  std::shared_ptr<const field::KleFieldSampler> sampler_for(
      const SampleBlockRequest& request);

  void send_payload(const Request& request,
                    const std::vector<std::uint8_t>& payload, bool is_error);
  void reply_error(const Request& request, ErrorCode code,
                   const std::string& message);

  ServerOptions options_;
  std::unique_ptr<store::KleArtifactStore> store_;
  store::LruCache<std::uint64_t, field::KleFieldSampler> sampler_cache_;

  net::Fd unix_listener_;
  net::Fd tcp_listener_;
  std::uint16_t bound_tcp_port_ = 0;

  std::vector<std::thread> accept_threads_;
  std::thread dispatcher_;

  // Reader threads are detached and deregister themselves on exit
  // (decrementing active_readers_ and notifying readers_cv_ under
  // conn_mu_); stop() waits for the count to reach zero instead of
  // joining, so per-connection state never outlives the connection.
  mutable std::mutex conn_mu_;
  std::vector<std::shared_ptr<Connection>> connections_;
  std::size_t active_readers_ = 0;
  std::condition_variable readers_cv_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;    // workers wait for arrivals
  std::condition_variable drained_cv_;  // stop() waits for quiescence
  std::deque<Request> queue_;
  std::size_t in_flight_ = 0;

  std::mutex pipeline_mu_;
  std::map<std::uint64_t, std::shared_ptr<PipelineEntry>> pipelines_;

  // Distributed-run registry: run_id -> live entry. Entries persist after
  // the coordinator finishes (complete=true, coordinator=nullptr) so late
  // workers get a terminal kComplete instead of kUnknown.
  std::mutex dist_mu_;
  std::map<std::string, std::shared_ptr<DistRun>> dist_runs_;

  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<bool> stop_accepting_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stop_workers_{false};
  std::atomic<bool> stop_requested_{false};
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
};

}  // namespace sckl::serve
