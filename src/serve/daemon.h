// Daemon entry point: runs a Server until SIGTERM/SIGINT or a kShutdown
// request, then drains it gracefully.
//
// Signal handling uses the self-pipe idiom: the handler writes one byte to
// a pipe (the only async-signal-safe action taken) and the event loop polls
// that pipe alongside the server's stop_requested flag. Receiving either
// trigger runs Server::stop() — stop accepting, drain in-flight work
// bounded by ServerOptions::drain_ms, flush exporters — and returns 0, so
// an orchestrator's TERM during load still observes a clean exit.
#pragma once

#include "serve/server.h"

namespace sckl::serve {

/// Runs a server until shutdown is requested. Returns the process exit
/// code: 0 on a graceful shutdown, nonzero when startup failed.
/// `announce` (optional) prints a "listening on ..." line to stdout once
/// the listeners are bound — the restart-under-load test keys off it.
int run_daemon(const ServerOptions& options, bool announce = true);

}  // namespace sckl::serve
