#include "serve/daemon.h"

#include <csignal>
#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <poll.h>
#include <unistd.h>
#endif

#include "common/error.h"

namespace sckl::serve {

#if defined(__unix__) || defined(__APPLE__)

namespace {

// Write end of the self-pipe; volatile sig_atomic_t is not needed because
// write() is async-signal-safe and the fd is set once before handlers are
// installed.
int g_signal_pipe_write = -1;

void handle_signal(int) {
  const char byte = 1;
  // The return value is deliberately ignored: a full pipe still means a
  // byte is already in flight, which is all the event loop needs.
  [[maybe_unused]] ssize_t n = ::write(g_signal_pipe_write, &byte, 1);
}

}  // namespace

int run_daemon(const ServerOptions& options, bool announce) {
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    std::fprintf(stderr, "sckl_serve: cannot create signal pipe\n");
    return 1;
  }
  net::Fd pipe_read(pipe_fds[0]);
  net::Fd pipe_write(pipe_fds[1]);
  g_signal_pipe_write = pipe_write.get();

  Server server(options);
  try {
    server.start();
  } catch (const Error& e) {
    std::fprintf(stderr, "sckl_serve: startup failed: %s\n", e.what());
    return 1;
  }

  struct sigaction action = {};
  action.sa_handler = handle_signal;
  ::sigemptyset(&action.sa_mask);
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
  // write_all already passes MSG_NOSIGNAL, but plain write() on a dead pipe
  // would still raise SIGPIPE.
  ::signal(SIGPIPE, SIG_IGN);

  if (announce) {
    if (!options.unix_path.empty())
      std::printf("sckl_serve: listening on unix:%s\n",
                  options.unix_path.c_str());
    if (options.tcp)
      std::printf("sckl_serve: listening on tcp:127.0.0.1:%u\n",
                  static_cast<unsigned>(server.tcp_port()));
    std::fflush(stdout);
  }

  for (;;) {
    struct pollfd pfd = {};
    pfd.fd = pipe_read.get();
    pfd.events = POLLIN;
    const int rc = ::poll(&pfd, 1, 200);
    if (rc > 0 && (pfd.revents & (POLLIN | POLLHUP)) != 0) break;
    // A kShutdown request flips the flag without touching the pipe.
    if (server.stop_requested()) break;
  }

  server.stop();
  return 0;
}

#else  // non-POSIX fallback: no signals, run until a kShutdown request.

int run_daemon(const ServerOptions& options, bool announce) {
  Server server(options);
  try {
    server.start();
  } catch (const Error& e) {
    std::fprintf(stderr, "sckl_serve: startup failed: %s\n", e.what());
    return 1;
  }
  if (announce) {
    std::printf("sckl_serve: listening\n");
    std::fflush(stdout);
  }
  while (!server.wait_for_stop_request(200)) {
  }
  server.stop();
  return 0;
}

#endif

}  // namespace sckl::serve
