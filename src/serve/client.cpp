#include "serve/client.h"

#include <cstring>

#include "common/error.h"

namespace sckl::serve {

Client Client::connect_unix(const std::string& path) {
  return Client(net::connect_unix(path));
}

Client Client::connect_tcp(std::uint16_t port) {
  return Client(net::connect_tcp(port));
}

std::vector<std::uint8_t> Client::roundtrip_raw(
    wire::FrameHeader header, const std::vector<std::uint8_t>& payload) {
  wire::write_frame(fd_.get(), header, payload);
  wire::FrameHeader reply_header;
  std::vector<std::uint8_t> reply;
  if (!wire::read_frame(fd_.get(), max_payload_bytes_, reply_header, reply))
    throw Error("serve client: connection closed before the reply",
                ErrorCode::kIoTransient);
  return reply;
}

std::vector<std::uint8_t> Client::roundtrip(
    MessageType type, const std::vector<std::uint8_t>& payload) {
  wire::FrameHeader header;
  header.type = static_cast<std::uint32_t>(type);
  header.deadline_ms = deadline_ms_;
  header.request_id = next_request_id_++;

  wire::write_frame(fd_.get(), header, payload);

  if (rpc_timeout_ms_ > 0 && !net::wait_readable(fd_.get(), rpc_timeout_ms_))
    throw Error("serve client: no reply within " +
                    std::to_string(rpc_timeout_ms_) +
                    "ms (peer silent or connection half-open)",
                ErrorCode::kDeadlineExceeded);
  wire::FrameHeader reply_header;
  std::vector<std::uint8_t> reply;
  if (!wire::read_frame(fd_.get(), max_payload_bytes_, reply_header, reply))
    throw Error("serve client: connection closed before the reply",
                ErrorCode::kIoTransient);
  if (reply_header.request_id != header.request_id)
    throw Error("serve client: reply correlates to request " +
                    std::to_string(reply_header.request_id) + ", expected " +
                    std::to_string(header.request_id),
                ErrorCode::kProtocol);
  return reply;
}

HelloReply Client::hello() {
  const std::vector<std::uint8_t> reply = roundtrip(MessageType::kHello, {});
  wire::ByteReader r(reply.data(), reply.size(), ErrorCode::kProtocol,
                     "hello reply");
  return decode_hello_reply(r);
}

SolveKleReply Client::solve_kle(const SolveKleRequest& request) {
  std::vector<std::uint8_t> payload;
  encode(payload, request);
  const std::vector<std::uint8_t> reply =
      roundtrip(MessageType::kSolveKle, payload);
  wire::ByteReader r(reply.data(), reply.size(), ErrorCode::kProtocol,
                     "solve_kle reply");
  return decode_solve_kle_reply(r);
}

SampleBlockReply Client::sample_block(const SampleBlockRequest& request) {
  std::vector<std::uint8_t> payload;
  encode(payload, request);
  const std::vector<std::uint8_t> reply =
      roundtrip(MessageType::kSampleBlock, payload);
  wire::ByteReader r(reply.data(), reply.size(), ErrorCode::kProtocol,
                     "sample_block reply");
  return decode_sample_block_reply(r);
}

linalg::Matrix Client::sample_matrix(const SampleBlockRequest& request) {
  const SampleBlockReply reply = sample_block(request);
  linalg::Matrix out(static_cast<std::size_t>(reply.rows),
                     static_cast<std::size_t>(reply.cols));
  std::memcpy(out.data(), reply.values.data(),
              reply.values.size() * sizeof(double));
  return out;
}

RunSstaReply Client::run_ssta(const RunSstaRequest& request) {
  std::vector<std::uint8_t> payload;
  encode(payload, request);
  const std::vector<std::uint8_t> reply =
      roundtrip(MessageType::kRunSsta, payload);
  wire::ByteReader r(reply.data(), reply.size(), ErrorCode::kProtocol,
                     "run_ssta reply");
  return decode_run_ssta_reply(r);
}

StatsReply Client::stats() {
  const std::vector<std::uint8_t> reply = roundtrip(MessageType::kStats, {});
  wire::ByteReader r(reply.data(), reply.size(), ErrorCode::kProtocol,
                     "stats reply");
  return decode_stats_reply(r);
}

ClaimLeasesReply Client::claim_leases(const ClaimLeasesRequest& request) {
  std::vector<std::uint8_t> payload;
  encode(payload, request);
  const std::vector<std::uint8_t> reply =
      roundtrip(MessageType::kClaimLeases, payload);
  wire::ByteReader r(reply.data(), reply.size(), ErrorCode::kProtocol,
                     "claim_leases reply");
  return decode_claim_leases_reply(r);
}

PublishPartialReply Client::publish_partial(
    const PublishPartialRequest& request) {
  std::vector<std::uint8_t> payload;
  encode(payload, request);
  const std::vector<std::uint8_t> reply =
      roundtrip(MessageType::kPublishPartial, payload);
  wire::ByteReader r(reply.data(), reply.size(), ErrorCode::kProtocol,
                     "publish_partial reply");
  return decode_publish_partial_reply(r);
}

HeartbeatReply Client::heartbeat(const HeartbeatRequest& request) {
  std::vector<std::uint8_t> payload;
  encode(payload, request);
  const std::vector<std::uint8_t> reply =
      roundtrip(MessageType::kHeartbeat, payload);
  wire::ByteReader r(reply.data(), reply.size(), ErrorCode::kProtocol,
                     "heartbeat reply");
  return decode_heartbeat_reply(r);
}

RunStatusReply Client::run_status(const RunStatusRequest& request) {
  std::vector<std::uint8_t> payload;
  encode(payload, request);
  const std::vector<std::uint8_t> reply =
      roundtrip(MessageType::kRunStatus, payload);
  wire::ByteReader r(reply.data(), reply.size(), ErrorCode::kProtocol,
                     "run_status reply");
  return decode_run_status_reply(r);
}

void Client::shutdown_server() {
  const std::vector<std::uint8_t> reply = roundtrip(MessageType::kShutdown, {});
  wire::ByteReader r(reply.data(), reply.size(), ErrorCode::kProtocol,
                     "shutdown reply");
  check_reply_status(r);
}

}  // namespace sckl::serve
