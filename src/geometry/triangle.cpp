#include "geometry/triangle.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace sckl::geometry {

double orientation(Point2 a, Point2 b, Point2 c) {
  return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

double triangle_area(const Triangle& t) {
  return 0.5 * std::abs(orientation(t.p[0], t.p[1], t.p[2]));
}

double longest_side(const Triangle& t) {
  return std::max({distance(t.p[0], t.p[1]), distance(t.p[1], t.p[2]),
                   distance(t.p[2], t.p[0])});
}

double min_angle_degrees(const Triangle& t) {
  const double a = distance(t.p[1], t.p[2]);
  const double b = distance(t.p[2], t.p[0]);
  const double c = distance(t.p[0], t.p[1]);
  auto angle = [](double opposite, double s1, double s2) {
    const double cosine =
        std::clamp((s1 * s1 + s2 * s2 - opposite * opposite) /
                       (2.0 * s1 * s2),
                   -1.0, 1.0);
    return std::acos(cosine) * 180.0 / 3.14159265358979323846;
  };
  return std::min({angle(a, b, c), angle(b, c, a), angle(c, a, b)});
}

bool point_in_triangle(const Triangle& t, Point2 q, double eps) {
  const double d1 = orientation(t.p[0], t.p[1], q);
  const double d2 = orientation(t.p[1], t.p[2], q);
  const double d3 = orientation(t.p[2], t.p[0], q);
  const bool has_neg = (d1 < -eps) || (d2 < -eps) || (d3 < -eps);
  const bool has_pos = (d1 > eps) || (d2 > eps) || (d3 > eps);
  return !(has_neg && has_pos);
}

bool in_circumcircle(Point2 a, Point2 b, Point2 c, Point2 q) {
  // 3x3 determinant of the lifted points; positive when q is inside the
  // circumcircle of the counter-clockwise triangle (a, b, c).
  const double ax = a.x - q.x;
  const double ay = a.y - q.y;
  const double bx = b.x - q.x;
  const double by = b.y - q.y;
  const double cx = c.x - q.x;
  const double cy = c.y - q.y;
  const double det =
      (ax * ax + ay * ay) * (bx * cy - cx * by) -
      (bx * bx + by * by) * (ax * cy - cx * ay) +
      (cx * cx + cy * cy) * (ax * by - bx * ay);
  return det > 0.0;
}

Point2 circumcenter(const Triangle& t) {
  const Point2 a = t.p[0];
  const Point2 b = t.p[1];
  const Point2 c = t.p[2];
  const double d =
      2.0 * (a.x * (b.y - c.y) + b.x * (c.y - a.y) + c.x * (a.y - b.y));
  require(std::abs(d) > 1e-14, "circumcenter: degenerate triangle");
  const double a2 = a.x * a.x + a.y * a.y;
  const double b2 = b.x * b.x + b.y * b.y;
  const double c2 = c.x * c.x + c.y * c.y;
  return {(a2 * (b.y - c.y) + b2 * (c.y - a.y) + c2 * (a.y - b.y)) / d,
          (a2 * (c.x - b.x) + b2 * (a.x - c.x) + c2 * (b.x - a.x)) / d};
}

std::array<double, 3> barycentric(const Triangle& t, Point2 q) {
  const double total = orientation(t.p[0], t.p[1], t.p[2]);
  require(std::abs(total) > 1e-300, "barycentric: degenerate triangle");
  const double w0 = orientation(t.p[1], t.p[2], q) / total;
  const double w1 = orientation(t.p[2], t.p[0], q) / total;
  return {w0, w1, 1.0 - w0 - w1};
}

}  // namespace sckl::geometry
