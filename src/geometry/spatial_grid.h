// Uniform-grid spatial index for point -> triangle lookup.
//
// Algorithm 2 of the paper maps every gate location g_i to the index of the
// mesh triangle containing it ("IndexOfContainingTriangle ... can be made
// efficient using some space indexing (grid, tree, etc.)"). This is that
// grid: each bucket stores the triangles whose bounding box overlaps it, so
// a query tests only a handful of candidates instead of all n.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "geometry/triangle.h"

namespace sckl::geometry {

/// Spatial hash over a fixed bounding box; built once, queried many times.
class SpatialGrid {
 public:
  /// Builds an index over `triangles` covering `bounds`. `cells_per_side` of
  /// 0 picks roughly sqrt(n) cells per side, which keeps the expected bucket
  /// occupancy constant.
  SpatialGrid(const std::vector<Triangle>& triangles, BoundingBox bounds,
              std::size_t cells_per_side = 0);

  /// Index of a triangle containing q, or nullopt when q is outside every
  /// triangle (e.g., outside the die). Boundary points match an arbitrary
  /// incident triangle.
  std::optional<std::size_t> find_containing(Point2 q) const;

  /// Like find_containing but falls back to the nearest triangle centroid
  /// when q is not strictly inside any triangle. This is what gate-location
  /// lookup wants: placements can land exactly on mesh edges or be nudged
  /// marginally outside the die by legalization.
  std::size_t find_containing_or_nearest(Point2 q) const;

  std::size_t cells_per_side() const { return cells_; }

 private:
  std::size_t cell_of(double v, double lo, double extent) const;

  std::vector<Triangle> triangles_;
  BoundingBox bounds_;
  std::size_t cells_ = 1;
  std::vector<std::vector<std::size_t>> buckets_;
};

}  // namespace sckl::geometry
