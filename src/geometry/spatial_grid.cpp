#include "geometry/spatial_grid.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace sckl::geometry {

SpatialGrid::SpatialGrid(const std::vector<Triangle>& triangles,
                         BoundingBox bounds, std::size_t cells_per_side)
    : triangles_(triangles), bounds_(bounds) {
  sckl::require(!triangles_.empty(), "SpatialGrid: no triangles");
  sckl::require(bounds_.width() > 0.0 && bounds_.height() > 0.0,
                "SpatialGrid: degenerate bounds");
  cells_ = cells_per_side != 0
               ? cells_per_side
               : std::max<std::size_t>(
                     1, static_cast<std::size_t>(
                            std::sqrt(static_cast<double>(triangles_.size()))));
  buckets_.assign(cells_ * cells_, {});

  for (std::size_t t = 0; t < triangles_.size(); ++t) {
    const auto& tri = triangles_[t];
    double min_x = tri.p[0].x;
    double max_x = tri.p[0].x;
    double min_y = tri.p[0].y;
    double max_y = tri.p[0].y;
    for (int i = 1; i < 3; ++i) {
      min_x = std::min(min_x, tri.p[i].x);
      max_x = std::max(max_x, tri.p[i].x);
      min_y = std::min(min_y, tri.p[i].y);
      max_y = std::max(max_y, tri.p[i].y);
    }
    const std::size_t cx0 = cell_of(min_x, bounds_.min.x, bounds_.width());
    const std::size_t cx1 = cell_of(max_x, bounds_.min.x, bounds_.width());
    const std::size_t cy0 = cell_of(min_y, bounds_.min.y, bounds_.height());
    const std::size_t cy1 = cell_of(max_y, bounds_.min.y, bounds_.height());
    for (std::size_t cy = cy0; cy <= cy1; ++cy)
      for (std::size_t cx = cx0; cx <= cx1; ++cx)
        buckets_[cy * cells_ + cx].push_back(t);
  }
}

std::size_t SpatialGrid::cell_of(double v, double lo, double extent) const {
  const double scaled = (v - lo) / extent * static_cast<double>(cells_);
  const auto cell = static_cast<long>(std::floor(scaled));
  return static_cast<std::size_t>(
      std::clamp<long>(cell, 0, static_cast<long>(cells_) - 1));
}

std::optional<std::size_t> SpatialGrid::find_containing(Point2 q) const {
  const std::size_t cx = cell_of(q.x, bounds_.min.x, bounds_.width());
  const std::size_t cy = cell_of(q.y, bounds_.min.y, bounds_.height());
  for (std::size_t t : buckets_[cy * cells_ + cx])
    if (point_in_triangle(triangles_[t], q)) return t;
  return std::nullopt;
}

std::size_t SpatialGrid::find_containing_or_nearest(Point2 q) const {
  if (auto hit = find_containing(q)) return *hit;
  // Rare path: scan all centroids. Gate placements are legal die locations,
  // so misses only happen on exact boundary/degenerate cases.
  std::size_t best = 0;
  double best_distance = std::numeric_limits<double>::infinity();
  for (std::size_t t = 0; t < triangles_.size(); ++t) {
    const double d = distance_squared(triangles_[t].centroid(), q);
    if (d < best_distance) {
      best_distance = d;
      best = t;
    }
  }
  return best;
}

}  // namespace sckl::geometry
