// Triangle primitives and exact-enough geometric predicates.
//
// The Galerkin basis of the paper is piecewise-constant over a triangulation
// (eq. 17); all the per-element quantities it needs live here: signed area,
// centroid, point containment (for IndexOfContainingTriangle in Algorithm 2),
// circumcircle membership (for Bowyer-Watson Delaunay), and angle/side
// quality metrics (the paper constrains the mesh to min angle 28 degrees).
#pragma once

#include <array>

#include "geometry/point2.h"

namespace sckl::geometry {

/// Triangle described by its three corner points.
struct Triangle {
  std::array<Point2, 3> p;

  Point2 centroid() const {
    return {(p[0].x + p[1].x + p[2].x) / 3.0,
            (p[0].y + p[1].y + p[2].y) / 3.0};
  }
};

/// Twice the signed area of (a, b, c); positive when counter-clockwise.
double orientation(Point2 a, Point2 b, Point2 c);

/// Unsigned triangle area.
double triangle_area(const Triangle& t);

/// Length of the longest side — the `h` of Theorem 2's convergence bound.
double longest_side(const Triangle& t);

/// Smallest interior angle in degrees (mesh quality metric).
double min_angle_degrees(const Triangle& t);

/// True when `q` lies inside or on the boundary of `t` (tolerant of the
/// degenerate orientation of either winding).
bool point_in_triangle(const Triangle& t, Point2 q, double eps = 1e-12);

/// True when `q` is strictly inside the circumcircle of (a, b, c), which must
/// be counter-clockwise. Core predicate of Bowyer-Watson.
bool in_circumcircle(Point2 a, Point2 b, Point2 c, Point2 q);

/// Circumcenter of the triangle; throws for (near-)degenerate triangles.
Point2 circumcenter(const Triangle& t);

/// Barycentric coordinates of q with respect to t (sums to 1).
std::array<double, 3> barycentric(const Triangle& t, Point2 q);

}  // namespace sckl::geometry
