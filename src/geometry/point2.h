// 2-D point/vector type used for die coordinates. The paper works on the
// normalized chip area D = [-1, 1] x [-1, 1]; everything spatial in this
// library (mesh vertices, gate placements, kernel arguments) is a Point2.
#pragma once

#include <cmath>

namespace sckl::geometry {

/// Plain 2-D point with value semantics.
struct Point2 {
  double x = 0.0;
  double y = 0.0;

  friend Point2 operator+(Point2 a, Point2 b) { return {a.x + b.x, a.y + b.y}; }
  friend Point2 operator-(Point2 a, Point2 b) { return {a.x - b.x, a.y - b.y}; }
  friend Point2 operator*(double s, Point2 p) { return {s * p.x, s * p.y}; }
  friend Point2 operator*(Point2 p, double s) { return s * p; }
  friend bool operator==(Point2 a, Point2 b) { return a.x == b.x && a.y == b.y; }
};

/// Euclidean (L2) distance — the metric of every isotropic kernel here.
inline double distance(Point2 a, Point2 b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

/// Squared Euclidean distance (avoids the sqrt for the Gaussian kernel).
inline double distance_squared(Point2 a, Point2 b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Manhattan (L1) distance — used by the separable exponential kernel (eq. 5).
inline double manhattan_distance(Point2 a, Point2 b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

/// Axis-aligned bounding box.
struct BoundingBox {
  Point2 min{0.0, 0.0};
  Point2 max{0.0, 0.0};

  double width() const { return max.x - min.x; }
  double height() const { return max.y - min.y; }
  double area() const { return width() * height(); }
  bool contains(Point2 p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }

  /// The paper's normalized die: [-1, 1] x [-1, 1].
  static BoundingBox unit_die() { return {{-1.0, -1.0}, {1.0, 1.0}}; }
};

}  // namespace sckl::geometry
