// Hierarchical low-rank compression of smooth kernel matrices (tile tree +
// adaptive cross approximation), behind the KernelOperator interface.
//
// The correlation kernels of the paper are smooth and isotropic, so the
// interaction between two well-separated groups of triangle centroids is
// numerically low rank. This module exploits that without ever seeing the
// geometry types: it takes plain point coordinates plus an EntrySource
// oracle for matrix entries, partitions the points into a spatial tile tree
// (recursive longest-axis median split), classifies tile pairs by the
// admissibility condition
//
//     max(diam(s), diam(t)) <= eta * dist(s, t)
//
// and compresses every admissible (far-field) block with partial-pivot ACA
// to a relative Frobenius tolerance, keeping inadmissible leaf-pair
// (near-field) blocks as exact dense tiles. Storage drops from O(n^2) to
// O(n log n * k) where k is the tolerance-dependent block rank — the lever
// that takes the KLE solve from the ~10^4-triangle dense ceiling to
// million-triangle dies (DESIGN.md §14).
//
// Symmetry: the source must be symmetric (entry(i,k) == entry(k,i)); only
// upper block pairs are stored, and apply() adds each off-diagonal block's
// transpose contribution, halving memory.
//
// Determinism: the build is a pure function of (source, points, options) —
// identical factors for any build thread count. apply() is bit-reproducible
// for a fixed apply thread count (per-worker partial outputs are merged in
// worker order); across different thread counts it guarantees the accuracy
// bound, not bit equality. The matrix-free KLE path is documented as
// eigenvalue-accurate rather than bit-stable for exactly this reason.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/kernel_operator.h"
#include "linalg/matrix.h"

namespace sckl::linalg {

/// Entry oracle of an implicitly defined symmetric matrix. entry(i, k) must
/// be finite, symmetric, and a pure function of (i, k).
class EntrySource {
 public:
  virtual ~EntrySource() = default;

  /// Matrix dimension n.
  virtual std::size_t dim() const = 0;

  /// Entry A(i, k).
  virtual double entry(std::size_t i, std::size_t k) const = 0;

  /// out[c] = entry(i, cols[c]) for c in [0, count) — the ACA and
  /// dense-tile fill hot path. The default loops entry(); sources with a
  /// cheaper batched form (one sqrt(a_i) load per row, say) override it.
  virtual void row_slice(std::size_t i, const std::size_t* cols,
                         std::size_t count, double* out) const;
};

/// One node of the spatial tile tree. Points are permuted so each node owns
/// the contiguous permuted index range [begin, end).
struct TileNode {
  std::size_t begin = 0;
  std::size_t end = 0;
  double min_x = 0.0, min_y = 0.0, max_x = 0.0, max_y = 0.0;
  int left = -1;   // child node index, -1 on leaves
  int right = -1;
  std::size_t size() const { return end - begin; }
  bool leaf() const { return left < 0; }
};

/// Binary spatial partition of 2-D points: recursive longest-axis median
/// split down to `leaf_size` points per tile. Deterministic — ties in the
/// median split are broken by original index.
class TileTree {
 public:
  TileTree(const std::vector<double>& xs, const std::vector<double>& ys,
           std::size_t leaf_size);

  std::size_t num_points() const { return perm_.size(); }
  /// Node 0 is the root; children always follow their parent.
  const std::vector<TileNode>& nodes() const { return nodes_; }
  /// perm()[p] = original index of the point at permuted position p. Every
  /// original index appears exactly once (the partition invariant the tests
  /// assert).
  const std::vector<std::size_t>& perm() const { return perm_; }
  std::size_t depth() const { return depth_; }
  std::size_t num_leaves() const { return num_leaves_; }

 private:
  std::size_t build(const std::vector<double>& xs,
                    const std::vector<double>& ys, std::size_t begin,
                    std::size_t end, std::size_t leaf_size,
                    std::size_t level);

  std::vector<TileNode> nodes_;
  std::vector<std::size_t> perm_;
  std::size_t depth_ = 0;
  std::size_t num_leaves_ = 0;
};

/// Tuning knobs of the hierarchical build.
struct HmatOptions {
  /// Tile tree leaf size: near-field dense tiles are at most this square.
  std::size_t leaf_size = 64;
  /// Admissibility parameter eta: larger accepts closer (coarser) far-field
  /// blocks — less memory, higher per-block ranks. Must be > 0.
  double admissibility = 2.0;
  /// Relative Frobenius-norm tolerance of each ACA-compressed block:
  /// ||A_block - U V^T||_F <~ aca_tolerance * ||A_block||_F.
  double aca_tolerance = 1e-7;
  /// Per-block rank cap (safety valve; counted in stats.rank_cap_hits when
  /// hit, which signals the tolerance was not reached on that block).
  std::size_t max_rank = 96;
  /// Worker threads for the block build and apply: 0 = auto (SCKL_THREADS
  /// env, else hardware concurrency), 1 = serial.
  std::size_t num_threads = 1;
  /// Hard ceiling on compressed storage in bytes; the build throws
  /// sckl::Error (code kOverloaded) when exceeded. 0 = unbounded.
  std::size_t max_bytes = 0;
};

/// What one build produced — the memory-model numbers DESIGN.md §14
/// documents and bench_matfree records.
struct HmatStats {
  std::size_t dim = 0;
  std::size_t leaves = 0;
  std::size_t tree_depth = 0;
  std::size_t lowrank_blocks = 0;
  std::size_t dense_blocks = 0;
  std::size_t compressed_bytes = 0;  // factor + dense-tile storage
  std::size_t max_rank = 0;          // largest ACA rank over all blocks
  double mean_rank = 0.0;            // mean ACA rank over low-rank blocks
  std::size_t rank_cap_hits = 0;     // blocks stopped by max_rank, not tol
  /// compressed_bytes / (8 n^2): fraction of the dense footprint.
  double compression = 0.0;
};

/// Result of one ACA block compression: A_block ~= u * v^T with u
/// (rows x rank) and v (cols x rank). converged is false when the rank cap
/// stopped the iteration before the tolerance was met.
struct AcaResult {
  Matrix u;
  Matrix v;
  std::size_t rank = 0;
  bool converged = false;
};

/// Partial-pivot adaptive cross approximation of the block
/// source[rows x cols] to relative Frobenius tolerance. The classic
/// last-cross stopping heuristic is backed by a stagnation guard: before
/// convergence is accepted, a deterministic sample of unused rows is checked
/// against the true residual, and the factorization resumes from the worst
/// offender when any of them still exceeds the tolerance (counter
/// `sckl.linalg.hmat.aca_restarts`). Exposed for the error-bound tests;
/// HMatrix uses it per admissible block.
AcaResult aca_compress(const EntrySource& source, const std::size_t* rows,
                       std::size_t num_rows, const std::size_t* cols,
                       std::size_t num_cols, double tolerance,
                       std::size_t max_rank);

/// Hierarchically compressed symmetric kernel matrix. Build cost is one
/// pass of kernel evaluations over near-field tiles plus O(rank * (m + n))
/// evaluations per far-field block; apply cost and storage are
/// O(n log n * rank).
class HMatrix final : public KernelOperator {
 public:
  /// Compresses `source` over the points (xs, ys) (one point per matrix
  /// index; xs.size() == ys.size() == source.dim()). The source is only
  /// used during construction. Throws sckl::Error (kOverloaded) when
  /// options.max_bytes is exceeded.
  HMatrix(const EntrySource& source, const std::vector<double>& xs,
          const std::vector<double>& ys, const HmatOptions& options = {});

  std::size_t dim() const override { return tree_.num_points(); }
  void apply(const Vector& x, Vector& y) const override;
  const char* name() const override { return "hmat"; }

  const HmatStats& stats() const { return stats_; }
  const TileTree& tree() const { return tree_; }

  /// Overrides the worker count apply() uses (defaults to the build's
  /// resolved num_threads). 0 = auto, 1 = serial. Lets an operator built
  /// wide run its applies serially (or vice versa) — and is what the tests
  /// use to verify builds are thread-count invariant bit for bit.
  void set_apply_threads(std::size_t num_threads);

 private:
  struct Block {
    int row_node = -1;  // owns permuted rows [begin, end)
    int col_node = -1;  // owns permuted cols [begin, end)
    bool lowrank = false;
    bool aca_converged = true;  // false: rank cap stopped short of tolerance
    Matrix u, v;   // lowrank: rows x r and cols x r
    Matrix dense;  // near field: rows x cols, exact entries
  };

  void enumerate_blocks(int s, int t, double eta, std::size_t leaf_size);
  void fill_block(const EntrySource& source, Block& block,
                  const HmatOptions& options, std::size_t* bytes_out) const;
  void apply_block(const Block& block, const Vector& xp, Vector& yp) const;

  TileTree tree_;
  std::vector<Block> blocks_;
  std::vector<std::size_t> inv_perm_;  // original index -> permuted position
  HmatStats stats_;
  std::size_t apply_threads_ = 1;
};

}  // namespace sckl::linalg
