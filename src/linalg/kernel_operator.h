// Abstract symmetric linear operator for the iterative eigensolvers.
//
// Lanczos only ever needs y = A x, so the solver is written against this
// interface instead of a materialized Matrix: a dense Galerkin matrix, an
// on-the-fly kernel matvec (core/matfree_operator.h), and a hierarchical
// low-rank compression (linalg/hmat.h) are all interchangeable backends of
// the same KLE solve. The dense path is just one more implementation —
// DenseKernelOperator rides the dispatched SIMD gemv kernels — so there is
// exactly one matvec definition per representation in the whole codebase.
//
// Determinism: apply() must be a pure function of x (same input bits ->
// same output bits for a given operator instance and thread count). The
// dense and exact operators are bit-reproducible across thread counts as
// well; hierarchical operators guarantee accuracy (a relative matvec error
// bound), not bit equality — see DESIGN.md §14.
#pragma once

#include <cstddef>

#include "linalg/matrix.h"

namespace sckl::linalg {

/// Symmetric operator of dimension dim(): y = A x.
class KernelOperator {
 public:
  virtual ~KernelOperator() = default;

  /// Operator dimension n (A is n x n).
  virtual std::size_t dim() const = 0;

  /// y = A x. `x.size() == dim()`; `y` is resized by the implementation.
  virtual void apply(const Vector& x, Vector& y) const = 0;

  /// Stable short name for telemetry ("dense", "exact", "hmat").
  virtual const char* name() const = 0;
};

/// Dense matrix as a KernelOperator: y = A x through gemv_fast, the same
/// dispatched SIMD kernels the samplers use. Borrows the matrix — the
/// caller keeps it alive for the operator's lifetime.
class DenseKernelOperator final : public KernelOperator {
 public:
  /// `a` must be square and outlive this operator.
  explicit DenseKernelOperator(const Matrix& a);

  std::size_t dim() const override { return a_.rows(); }
  void apply(const Vector& x, Vector& y) const override;
  const char* name() const override { return "dense"; }

 private:
  const Matrix& a_;
};

}  // namespace sckl::linalg
