#include "linalg/gemm.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.h"

#if defined(__x86_64__) || defined(__i386__)
#define SCKL_X86 1
#include <immintrin.h>
#endif

namespace sckl::linalg {
namespace {

// Cache blocking constants. These are shared by every target: the k panel
// boundary is where partial sums round-trip through memory (exact for
// doubles, so bits are unaffected), and the j panel bounds the packed-B
// scratch. kKc * kNc doubles = 1 MiB of packed panel, sized for L2.
constexpr std::size_t kKc = 256;
constexpr std::size_t kNc = 512;

// One micro-kernel call updates `rows` rows of C over one packed B panel:
//   C[r][0..w) += sum_k a[r*lda + k] * bp[k*nr + j]
// with the fma chain ascending in k. `bp` is the packed kc x nr panel
// (zero-padded past w); `w <= nr` is the valid column count.
using MicroKernel = void (*)(const double* a, std::size_t lda,
                             const double* bp, double* c, std::size_t ldc,
                             std::size_t kc, std::size_t w, bool load_c);

struct KernelSet {
  MicroKernel rows4;  // 4-row kernel, nullptr when the target has none
  MicroKernel rows1;  // 1-row kernel (row tails, scalar fallback)
  std::size_t nr;     // packed panel width
};

// ---------------------------------------------------------------------------
// Scalar kernels (portable fallback). The body is an always_inline helper so
// it can be instantiated twice: once at the default target (std::fma lowers
// to the correctly-rounded libm call) and once under target("fma") where the
// very same chain lowers to hardware vfmadd — identical bits, ~20x faster.

__attribute__((always_inline)) inline void scalar_rows1_body(
    const double* a, const double* bp, double* c, std::size_t kc,
    std::size_t w, bool load_c) {
  if (w == 8) {
    double acc[8];
    for (int j = 0; j < 8; ++j) acc[j] = load_c ? c[j] : 0.0;
    for (std::size_t k = 0; k < kc; ++k) {
      const double av = a[k];
      const double* brow = bp + k * 8;
      for (int j = 0; j < 8; ++j) acc[j] = std::fma(av, brow[j], acc[j]);
    }
    for (int j = 0; j < 8; ++j) c[j] = acc[j];
    return;
  }
  double acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  if (load_c)
    for (std::size_t j = 0; j < w; ++j) acc[j] = c[j];
  for (std::size_t k = 0; k < kc; ++k) {
    const double av = a[k];
    const double* brow = bp + k * 8;
    for (std::size_t j = 0; j < w; ++j) acc[j] = std::fma(av, brow[j], acc[j]);
  }
  for (std::size_t j = 0; j < w; ++j) c[j] = acc[j];
}

void scalar_rows1(const double* a, std::size_t, const double* bp, double* c,
                  std::size_t, std::size_t kc, std::size_t w, bool load_c) {
  scalar_rows1_body(a, bp, c, kc, w, load_c);
}

#if SCKL_X86
__attribute__((target("fma"))) void scalar_rows1_hwfma(
    const double* a, std::size_t, const double* bp, double* c, std::size_t,
    std::size_t kc, std::size_t w, bool load_c) {
  scalar_rows1_body(a, bp, c, kc, w, load_c);
}
#endif

// ---------------------------------------------------------------------------
// AVX2 + FMA kernels: 4 rows x 8 columns, 8 ymm accumulators. Masked
// loads/stores keep column tails in-kernel without reading past row ends.

#if SCKL_X86

__attribute__((target("avx2,fma"))) void avx2_rows4(
    const double* a, std::size_t lda, const double* bp, double* c,
    std::size_t ldc, std::size_t kc, std::size_t w, bool load_c) {
  const __m256i lane = _mm256_setr_epi64x(0, 1, 2, 3);
  const __m256i m0 =
      _mm256_cmpgt_epi64(_mm256_set1_epi64x(static_cast<long long>(w)), lane);
  const __m256i m1 = _mm256_cmpgt_epi64(
      _mm256_set1_epi64x(static_cast<long long>(w) - 4), lane);
  __m256d acc[4][2];
  for (int r = 0; r < 4; ++r) {
    acc[r][0] = load_c ? _mm256_maskload_pd(c + r * ldc, m0)
                       : _mm256_setzero_pd();
    acc[r][1] = load_c ? _mm256_maskload_pd(c + r * ldc + 4, m1)
                       : _mm256_setzero_pd();
  }
  for (std::size_t k = 0; k < kc; ++k) {
    const double* brow = bp + k * 8;
    const __m256d b0 = _mm256_loadu_pd(brow);
    const __m256d b1 = _mm256_loadu_pd(brow + 4);
    for (int r = 0; r < 4; ++r) {
      const __m256d av = _mm256_set1_pd(a[r * lda + k]);
      acc[r][0] = _mm256_fmadd_pd(av, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_pd(av, b1, acc[r][1]);
    }
  }
  for (int r = 0; r < 4; ++r) {
    _mm256_maskstore_pd(c + r * ldc, m0, acc[r][0]);
    _mm256_maskstore_pd(c + r * ldc + 4, m1, acc[r][1]);
  }
}

__attribute__((target("avx2,fma"))) void avx2_rows1(
    const double* a, std::size_t, const double* bp, double* c, std::size_t,
    std::size_t kc, std::size_t w, bool load_c) {
  const __m256i lane = _mm256_setr_epi64x(0, 1, 2, 3);
  const __m256i m0 =
      _mm256_cmpgt_epi64(_mm256_set1_epi64x(static_cast<long long>(w)), lane);
  const __m256i m1 = _mm256_cmpgt_epi64(
      _mm256_set1_epi64x(static_cast<long long>(w) - 4), lane);
  __m256d a0 = load_c ? _mm256_maskload_pd(c, m0) : _mm256_setzero_pd();
  __m256d a1 = load_c ? _mm256_maskload_pd(c + 4, m1) : _mm256_setzero_pd();
  for (std::size_t k = 0; k < kc; ++k) {
    const double* brow = bp + k * 8;
    const __m256d av = _mm256_set1_pd(a[k]);
    a0 = _mm256_fmadd_pd(av, _mm256_loadu_pd(brow), a0);
    a1 = _mm256_fmadd_pd(av, _mm256_loadu_pd(brow + 4), a1);
  }
  _mm256_maskstore_pd(c, m0, a0);
  _mm256_maskstore_pd(c + 4, m1, a1);
}

// ---------------------------------------------------------------------------
// AVX-512F kernels: 4 rows x 32 columns, 16 zmm accumulators + 4 panel
// vectors; mask registers handle column tails.

__attribute__((always_inline)) inline __mmask8 avx512_mask(std::size_t w,
                                                           int v) {
  const long long rem = static_cast<long long>(w) - v * 8;
  if (rem >= 8) return static_cast<__mmask8>(0xFF);
  if (rem <= 0) return 0;
  return static_cast<__mmask8>((1u << rem) - 1u);
}

__attribute__((target("avx512f"))) void avx512_rows4(
    const double* a, std::size_t lda, const double* bp, double* c,
    std::size_t ldc, std::size_t kc, std::size_t w, bool load_c) {
  __mmask8 m[4];
  for (int v = 0; v < 4; ++v) m[v] = avx512_mask(w, v);
  __m512d acc[4][4];
  for (int r = 0; r < 4; ++r)
    for (int v = 0; v < 4; ++v)
      acc[r][v] = load_c ? _mm512_maskz_loadu_pd(m[v], c + r * ldc + v * 8)
                         : _mm512_setzero_pd();
  for (std::size_t k = 0; k < kc; ++k) {
    const double* brow = bp + k * 32;
    const __m512d b0 = _mm512_loadu_pd(brow);
    const __m512d b1 = _mm512_loadu_pd(brow + 8);
    const __m512d b2 = _mm512_loadu_pd(brow + 16);
    const __m512d b3 = _mm512_loadu_pd(brow + 24);
    for (int r = 0; r < 4; ++r) {
      const __m512d av = _mm512_set1_pd(a[r * lda + k]);
      acc[r][0] = _mm512_fmadd_pd(av, b0, acc[r][0]);
      acc[r][1] = _mm512_fmadd_pd(av, b1, acc[r][1]);
      acc[r][2] = _mm512_fmadd_pd(av, b2, acc[r][2]);
      acc[r][3] = _mm512_fmadd_pd(av, b3, acc[r][3]);
    }
  }
  for (int r = 0; r < 4; ++r)
    for (int v = 0; v < 4; ++v)
      _mm512_mask_storeu_pd(c + r * ldc + v * 8, m[v], acc[r][v]);
}

__attribute__((target("avx512f"))) void avx512_rows1(
    const double* a, std::size_t, const double* bp, double* c, std::size_t,
    std::size_t kc, std::size_t w, bool load_c) {
  __mmask8 m[4];
  for (int v = 0; v < 4; ++v) m[v] = avx512_mask(w, v);
  __m512d acc[4];
  for (int v = 0; v < 4; ++v)
    acc[v] = load_c ? _mm512_maskz_loadu_pd(m[v], c + v * 8)
                    : _mm512_setzero_pd();
  for (std::size_t k = 0; k < kc; ++k) {
    const double* brow = bp + k * 32;
    const __m512d av = _mm512_set1_pd(a[k]);
    acc[0] = _mm512_fmadd_pd(av, _mm512_loadu_pd(brow), acc[0]);
    acc[1] = _mm512_fmadd_pd(av, _mm512_loadu_pd(brow + 8), acc[1]);
    acc[2] = _mm512_fmadd_pd(av, _mm512_loadu_pd(brow + 16), acc[2]);
    acc[3] = _mm512_fmadd_pd(av, _mm512_loadu_pd(brow + 24), acc[3]);
  }
  for (int v = 0; v < 4; ++v)
    _mm512_mask_storeu_pd(c + v * 8, m[v], acc[v]);
}

#endif  // SCKL_X86

// ---------------------------------------------------------------------------
// Dispatch.

bool hardware_fma() {
#if SCKL_X86
  static const bool value = [] {
    __builtin_cpu_init();
    return __builtin_cpu_supports("fma") != 0;
  }();
  return value;
#else
  return false;
#endif
}

SimdTarget detect_target() {
#if SCKL_X86
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx512f")) return SimdTarget::kAvx512;
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
    return SimdTarget::kAvx2;
#endif
  return SimdTarget::kScalar;
}

SimdTarget parse_simd_name(const std::string& name) {
  if (name == "scalar") return SimdTarget::kScalar;
  if (name == "avx2") return SimdTarget::kAvx2;
  if (name == "avx512") return SimdTarget::kAvx512;
  require(false, "SCKL_SIMD: unknown target '" + name +
                     "' (expected scalar, avx2, or avx512)");
  return SimdTarget::kScalar;
}

SimdTarget resolve_env_target() {
  const char* env = std::getenv("SCKL_SIMD");
  if (env == nullptr || *env == '\0') return detected_simd_target();
  const SimdTarget requested = parse_simd_name(env);
  return simd_target_supported(requested) ? requested : detected_simd_target();
}

// -1 = not forced; otherwise the int value of the forced SimdTarget.
std::atomic<int> g_forced_target{-1};

KernelSet kernel_set(SimdTarget target) {
#if SCKL_X86
  switch (target) {
    case SimdTarget::kAvx512:
      return {avx512_rows4, avx512_rows1, 32};
    case SimdTarget::kAvx2:
      return {avx2_rows4, avx2_rows1, 8};
    case SimdTarget::kScalar:
      break;
  }
  return {nullptr, hardware_fma() ? scalar_rows1_hwfma : scalar_rows1, 8};
#else
  (void)target;
  return {nullptr, scalar_rows1, 8};
#endif
}

// Packs B's (pc, jc) panel into kc x nr column strips, zero-padded to nr so
// kernels always read full vectors. Packing only copies, never computes, so
// it cannot affect bits.
void pack_b(const Matrix& b, std::size_t pc, std::size_t jc, std::size_t kc,
            std::size_t nc, std::size_t nr, double* out) {
  const std::size_t panels = (nc + nr - 1) / nr;
  for (std::size_t p = 0; p < panels; ++p) {
    const std::size_t j0 = p * nr;
    const std::size_t w = std::min(nr, nc - j0);
    double* dst = out + p * kc * nr;
    for (std::size_t k = 0; k < kc; ++k) {
      std::memcpy(dst, b.row_ptr(pc + k) + jc + j0, w * sizeof(double));
      if (w < nr) std::memset(dst + w, 0, (nr - w) * sizeof(double));
      dst += nr;
    }
  }
}

// ---------------------------------------------------------------------------
// Deterministic dot product: 8 interleaved fma chains (lane l accumulates
// elements k = l mod 8), folded by a fixed pairwise tree. Tail element t
// (t >= n8) extends lane t - n8. Identical chains on every target.

__attribute__((always_inline)) inline double dot8_finish(double s[8],
                                                         const double* a,
                                                         const double* x,
                                                         std::size_t n8,
                                                         std::size_t n) {
  for (std::size_t t = n8; t < n; ++t)
    s[t - n8] = std::fma(a[t], x[t], s[t - n8]);
  return ((s[0] + s[1]) + (s[2] + s[3])) + ((s[4] + s[5]) + (s[6] + s[7]));
}

__attribute__((always_inline)) inline double dot8_scalar_body(
    const double* a, const double* x, std::size_t n) {
  double s[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  const std::size_t n8 = n - n % 8;
  for (std::size_t t = 0; t < n8; t += 8)
    for (int l = 0; l < 8; ++l) s[l] = std::fma(a[t + l], x[t + l], s[l]);
  return dot8_finish(s, a, x, n8, n);
}

double dot8_scalar(const double* a, const double* x, std::size_t n) {
  return dot8_scalar_body(a, x, n);
}

#if SCKL_X86

__attribute__((target("fma"))) double dot8_scalar_hwfma(const double* a,
                                                        const double* x,
                                                        std::size_t n) {
  return dot8_scalar_body(a, x, n);
}

__attribute__((target("avx2,fma"))) double dot8_avx2(const double* a,
                                                     const double* x,
                                                     std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  const std::size_t n8 = n - n % 8;
  for (std::size_t t = 0; t < n8; t += 8) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + t), _mm256_loadu_pd(x + t),
                           acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + t + 4),
                           _mm256_loadu_pd(x + t + 4), acc1);
  }
  double s[8];
  _mm256_storeu_pd(s, acc0);
  _mm256_storeu_pd(s + 4, acc1);
  return dot8_finish(s, a, x, n8, n);
}

__attribute__((target("avx512f"))) double dot8_avx512(const double* a,
                                                      const double* x,
                                                      std::size_t n) {
  __m512d acc = _mm512_setzero_pd();
  const std::size_t n8 = n - n % 8;
  for (std::size_t t = 0; t < n8; t += 8)
    acc = _mm512_fmadd_pd(_mm512_loadu_pd(a + t), _mm512_loadu_pd(x + t), acc);
  double s[8];
  _mm512_storeu_pd(s, acc);
  return dot8_finish(s, a, x, n8, n);
}

#endif  // SCKL_X86

using DotKernel = double (*)(const double*, const double*, std::size_t);

DotKernel dot_kernel(SimdTarget target) {
#if SCKL_X86
  switch (target) {
    case SimdTarget::kAvx512:
      return dot8_avx512;
    case SimdTarget::kAvx2:
      return dot8_avx2;
    case SimdTarget::kScalar:
      break;
  }
  return hardware_fma() ? dot8_scalar_hwfma : dot8_scalar;
#else
  (void)target;
  return dot8_scalar;
#endif
}

// A^T x accumulation body, instantiated at both fma targets like the scalar
// gemm kernel. k outer / j inner keeps A streaming row-major while every
// y[j] chain stays ascending in k — the same order gemm uses.
__attribute__((always_inline)) inline void gemv_t_body(const Matrix& a,
                                                       const Vector& x,
                                                       Vector& y) {
  const std::size_t n = a.cols();
  for (std::size_t k = 0; k < a.rows(); ++k) {
    const double xk = x[k];
    const double* row = a.row_ptr(k);
    for (std::size_t j = 0; j < n; ++j) y[j] = std::fma(xk, row[j], y[j]);
  }
}

void gemv_t_plain(const Matrix& a, const Vector& x, Vector& y) {
  gemv_t_body(a, x, y);
}

#if SCKL_X86
__attribute__((target("fma"))) void gemv_t_hwfma(const Matrix& a,
                                                 const Vector& x, Vector& y) {
  gemv_t_body(a, x, y);
}
#endif

}  // namespace

const char* simd_target_name(SimdTarget target) {
  switch (target) {
    case SimdTarget::kAvx512:
      return "avx512";
    case SimdTarget::kAvx2:
      return "avx2";
    case SimdTarget::kScalar:
      break;
  }
  return "scalar";
}

SimdTarget detected_simd_target() {
  static const SimdTarget target = detect_target();
  return target;
}

bool simd_target_supported(SimdTarget target) {
  return static_cast<int>(target) <= static_cast<int>(detected_simd_target());
}

SimdTarget active_simd_target() {
  const int forced = g_forced_target.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<SimdTarget>(forced);
  static const SimdTarget resolved = resolve_env_target();
  return resolved;
}

void set_simd_target(SimdTarget target) {
  require(simd_target_supported(target),
          std::string("set_simd_target: ") + simd_target_name(target) +
              " is not supported on this CPU");
  g_forced_target.store(static_cast<int>(target), std::memory_order_relaxed);
}

void reset_simd_target() {
  g_forced_target.store(-1, std::memory_order_relaxed);
}

namespace {

// Shared driver: C = (load_first ? C : 0) + A * B for the first k panel,
// accumulating thereafter. Skipping the first-panel load lets gemm_into
// avoid streaming a zero-filled C through memory twice — bit-identical to
// loading explicit zeros, since the accumulator chain starts at 0.0 either
// way.
void gemm_driver(const Matrix& a, const Matrix& b, Matrix& c,
                 bool load_first) {
  const std::size_t m = a.rows();
  const std::size_t kdim = a.cols();
  const std::size_t n = b.cols();
  if (m == 0 || n == 0 || kdim == 0) return;

  const KernelSet ks = kernel_set(active_simd_target());
  const std::size_t lda = a.cols();
  const std::size_t ldc = c.cols();

  thread_local std::vector<double> packed;
  for (std::size_t jc = 0; jc < n; jc += kNc) {
    const std::size_t nc = std::min(kNc, n - jc);
    const std::size_t panels = (nc + ks.nr - 1) / ks.nr;
    for (std::size_t pc = 0; pc < kdim; pc += kKc) {
      const std::size_t kc = std::min(kKc, kdim - pc);
      const bool load_c = load_first || pc > 0;
      if (packed.size() < panels * kc * ks.nr)
        packed.resize(panels * kc * ks.nr);
      pack_b(b, pc, jc, kc, nc, ks.nr, packed.data());
      std::size_t i = 0;
      if (ks.rows4 != nullptr) {
        for (; i + 4 <= m; i += 4) {
          const double* arow = a.row_ptr(i) + pc;
          for (std::size_t p = 0; p < panels; ++p) {
            const std::size_t w = std::min(ks.nr, nc - p * ks.nr);
            ks.rows4(arow, lda, packed.data() + p * kc * ks.nr,
                     c.row_ptr(i) + jc + p * ks.nr, ldc, kc, w, load_c);
          }
        }
      }
      for (; i < m; ++i) {
        const double* arow = a.row_ptr(i) + pc;
        for (std::size_t p = 0; p < panels; ++p) {
          const std::size_t w = std::min(ks.nr, nc - p * ks.nr);
          ks.rows1(arow, lda, packed.data() + p * kc * ks.nr,
                   c.row_ptr(i) + jc + p * ks.nr, ldc, kc, w, load_c);
        }
      }
    }
  }
}

}  // namespace

void gemm_add(const Matrix& a, const Matrix& b, Matrix& c) {
  require(a.cols() == b.rows(), "gemm_add: inner dimensions differ");
  require(c.rows() == a.rows() && c.cols() == b.cols(),
          "gemm_add: output shape mismatch");
  require(&c != &a && &c != &b, "gemm_add: output may not alias an input");
  gemm_driver(a, b, c, /*load_first=*/true);
}

void gemm_into(const Matrix& a, const Matrix& b, Matrix& c) {
  require(a.cols() == b.rows(), "gemm_into: inner dimensions differ");
  require(&c != &a && &c != &b, "gemm_into: output may not alias an input");
  c.reshape(a.rows(), b.cols());
  if (a.cols() == 0) {
    c.fill(0.0);
    return;
  }
  gemm_driver(a, b, c, /*load_first=*/false);
}

Matrix gemm_fast(const Matrix& a, const Matrix& b) {
  Matrix c;
  gemm_into(a, b, c);
  return c;
}

Vector gemv_fast(const Matrix& a, const Vector& x) {
  require(a.cols() == x.size(), "gemv_fast: dimension mismatch");
  const DotKernel dot = dot_kernel(active_simd_target());
  Vector y(a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i)
    y[i] = dot(a.row_ptr(i), x.data(), a.cols());
  return y;
}

Vector gemv_transposed_fast(const Matrix& a, const Vector& x) {
  require(a.rows() == x.size(), "gemv_transposed_fast: dimension mismatch");
  Vector y(a.cols(), 0.0);
#if SCKL_X86
  if (hardware_fma()) {
    gemv_t_hwfma(a, x, y);
    return y;
  }
#endif
  gemv_t_plain(a, x, y);
  return y;
}

}  // namespace sckl::linalg
