#include "linalg/lanczos.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/error.h"
#include "common/rng.h"
#include "linalg/blas.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "robust/fault_injection.h"

namespace sckl::linalg {
namespace {

// Removes the components of w along every row of basis (classical
// Gram-Schmidt, applied twice by the caller for stability).
void orthogonalize_against(const std::vector<Vector>& basis, Vector& w) {
  for (const Vector& v : basis) {
    const double coeff = dot(v, w);
    if (coeff != 0.0) axpy(-coeff, v, w);
  }
}

Vector random_unit_vector(std::size_t n, Rng& rng,
                          const std::vector<Vector>& basis) {
  for (int attempt = 0; attempt < 8; ++attempt) {
    Vector v = rng.normal_vector(n);
    orthogonalize_against(basis, v);
    orthogonalize_against(basis, v);
    const double norm = norm2(v);
    if (norm > 1e-12 * std::sqrt(static_cast<double>(n))) {
      scale(1.0 / norm, v);
      return v;
    }
  }
  require(false, "lanczos: could not generate a vector outside the subspace");
  return {};
}

}  // namespace

SymmetricEigenResult lanczos_largest(const KernelOperator& op,
                                     const LanczosOptions& options,
                                     LanczosInfo* info) {
  const std::size_t n = op.dim();
  require(n > 0, "lanczos: dimension must be positive");
  const std::size_t k = std::min(options.num_eigenpairs, n);
  require(k > 0, "lanczos: need at least one eigenpair");
  obs::Span span("linalg.lanczos");
  std::size_t max_m = options.max_subspace == 0
                          ? std::min(n, 2 * k + 80)
                          : std::min(options.max_subspace, n);
  max_m = std::max(max_m, k);

  // Deterministic fault: pretend the spectrum is too hard and the iteration
  // never converges, so the caller's fallback chain (solve_kle -> dense) is
  // exercised on demand.
  const bool forced_failure =
      robust::fault_injected(robust::FaultSite::kLanczosConvergence);

  Rng rng(options.seed);
  std::vector<Vector> basis;  // Lanczos vectors v_0 .. v_{m-1}
  basis.reserve(max_m);
  Vector alpha;  // T diagonal
  Vector beta;   // T subdiagonal (beta[j] couples v_j and v_{j+1})

  basis.push_back(random_unit_vector(n, rng, basis));
  Vector w(n);

  SymmetricEigenResult tri;
  std::size_t m = 0;
  std::size_t restarts = 0;
  bool converged = false;
  double last_beta = 0.0;  // residual scale of the latest Ritz extraction
  while (basis.size() <= max_m) {
    const Vector& v = basis.back();
    op.apply(v, w);
    const double a = dot(v, w);
    alpha.push_back(a);
    axpy(-a, v, w);
    if (basis.size() >= 2) {
      // beta term plus full reorthogonalization (twice) to defeat the loss
      // of orthogonality that plain Lanczos suffers for clustered spectra.
      orthogonalize_against(basis, w);
      orthogonalize_against(basis, w);
    } else {
      orthogonalize_against(basis, w);
    }
    double b = norm2(w);
    m = basis.size();
    last_beta = b;

    // Convergence test: residual of Ritz pair i is |beta_m * s_{m,i}|.
    if (m >= k) {
      Vector sub(beta.begin(), beta.end());
      tri = tridiagonal_eigen(alpha, sub);
      converged = !forced_failure;
      for (std::size_t i = 0; converged && i < k; ++i) {
        const double resid = std::abs(b * tri.vectors(m - 1, i));
        const double threshold =
            options.tolerance * std::max(std::abs(tri.values[i]), 1e-30);
        if (resid > threshold) converged = false;
      }
      if (converged) break;
    }
    if (basis.size() == max_m) break;

    if (b <= 1e-14) {
      // Invariant subspace found; restart with a fresh orthogonal direction.
      ++restarts;
      basis.push_back(random_unit_vector(n, rng, basis));
      beta.push_back(0.0);
      continue;
    }
    scale(1.0 / b, w);
    basis.push_back(w);
    beta.push_back(b);
  }

  ensure(m >= k, "lanczos: subspace smaller than requested eigenpair count");
  {
    // Counted before the convergence verdict so failed solves (which throw
    // below and fall back to the dense path) still show up in the totals.
    static obs::Counter& solves = obs::counter("sckl.linalg.lanczos.solves");
    static obs::Counter& iters = obs::counter("sckl.linalg.lanczos.iterations");
    static obs::Counter& matvecs = obs::counter("sckl.linalg.lanczos.matvecs");
    static obs::Counter& restart_count =
        obs::counter("sckl.linalg.lanczos.restarts");
    solves.add(1);
    iters.add(m);
    matvecs.add(alpha.size());  // exactly one apply() per basis growth step
    restart_count.add(restarts);
  }
  if (!converged) {
    // Final Ritz extraction at the subspace limit.
    Vector sub(beta.begin(), beta.end());
    tri = tridiagonal_eigen(alpha, sub);
  }

  // Relative Ritz residuals |beta_m s_{m,i}| / max(|lambda_i|, eps) of the
  // requested pairs, from the final extraction.
  double max_residual = 0.0;
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const double resid = std::abs(last_beta * tri.vectors(m - 1, i)) /
                         std::max(std::abs(tri.values[i]), 1e-30);
    max_residual = std::max(max_residual, resid);
    if (resid > options.best_effort_tolerance) ++rejected;
  }
  if (info != nullptr) {
    info->converged = converged;
    info->best_effort = !converged && rejected == 0 && !forced_failure;
    info->fault_injected = forced_failure;
    info->iterations = m;
    info->max_residual = max_residual;
    info->rejected_pairs = rejected;
  }
  if (forced_failure)
    throw Error("lanczos: convergence failure injected at fault site '" +
                    std::string(robust::to_string(
                        robust::FaultSite::kLanczosConvergence)) +
                    "'",
                ErrorCode::kNoConvergence);
  if (!converged && rejected > 0) {
    // Accept best effort only if residuals are reasonable, otherwise fail
    // loudly: here the loose bound failed for `rejected` of the k pairs.
    char message[192];
    std::snprintf(message, sizeof(message),
                  "lanczos: %zu of %zu Ritz pairs unconverged after %zu "
                  "iterations (max relative residual %.3g exceeds best-effort "
                  "tolerance %.3g)",
                  rejected, k, m, max_residual,
                  options.best_effort_tolerance);
    throw Error(message, ErrorCode::kNoConvergence);
  }

  // Ritz vectors: y_i = sum_j basis[j] * s(j, i).
  SymmetricEigenResult result;
  result.values.assign(tri.values.begin(), tri.values.begin() + k);
  result.vectors = Matrix(n, k);
  for (std::size_t i = 0; i < k; ++i) {
    Vector y(n, 0.0);
    for (std::size_t j = 0; j < m; ++j) {
      const double s = tri.vectors(j, i);
      if (s != 0.0) axpy(s, basis[j], y);
    }
    const double norm = norm2(y);
    ensure(norm > 1e-12, "lanczos: degenerate Ritz vector");
    for (std::size_t row = 0; row < n; ++row)
      result.vectors(row, i) = y[row] / norm;
  }
  return result;
}

namespace {

// Closure adapter so legacy callers keep the MatVec signature while the
// iteration itself only ever sees KernelOperator.
class FunctionOperator final : public KernelOperator {
 public:
  FunctionOperator(const MatVec& apply, std::size_t n)
      : apply_(apply), n_(n) {}
  std::size_t dim() const override { return n_; }
  void apply(const Vector& x, Vector& y) const override { apply_(x, y); }
  const char* name() const override { return "closure"; }

 private:
  const MatVec& apply_;
  std::size_t n_;
};

}  // namespace

SymmetricEigenResult lanczos_largest(const MatVec& apply, std::size_t n,
                                     const LanczosOptions& options,
                                     LanczosInfo* info) {
  return lanczos_largest(FunctionOperator(apply, n), options, info);
}

SymmetricEigenResult lanczos_largest(const Matrix& a,
                                     const LanczosOptions& options,
                                     LanczosInfo* info) {
  require(a.rows() == a.cols(), "lanczos: matrix must be square");
  // The dense matvec is DenseKernelOperator — the dispatched SIMD gemv
  // kernels, where cold KLE solves spend their time.
  return lanczos_largest(DenseKernelOperator(a), options, info);
}

}  // namespace sckl::linalg
