// Level-1/2/3 dense kernels used throughout the library.
//
// gemm is a blocked i-k-j loop ordering (row-major friendly); on the Monte
// Carlo sampler's N x N_g workloads it is the dominant cost of Algorithm 1,
// exactly as in the paper, so it is written to stream rows and let the
// compiler vectorize the innermost axpy.
#pragma once

#include <cstddef>

#include "linalg/matrix.h"

namespace sckl::linalg {

/// Dot product of two equal-length vectors.
double dot(const Vector& x, const Vector& y);

/// Euclidean norm.
double norm2(const Vector& x);

/// y += alpha * x.
void axpy(double alpha, const Vector& x, Vector& y);

/// x *= alpha.
void scale(double alpha, Vector& x);

/// y = A * x (A: m x n, x: n, y: m).
Vector gemv(const Matrix& a, const Vector& x);

/// y = A^T * x (A: m x n, x: m, y: n).
Vector gemv_transposed(const Matrix& a, const Vector& x);

/// C = A * B (A: m x k, B: k x n).
Matrix gemm(const Matrix& a, const Matrix& b);

/// C = A * B^T (A: m x k, B: n x k). Used by samplers that multiply by a
/// factor stored row-major (avoids materializing the transpose).
Matrix gemm_bt(const Matrix& a, const Matrix& b);

/// C = A^T * A (Gram matrix of columns), exploiting symmetry.
Matrix gram(const Matrix& a);

}  // namespace sckl::linalg
