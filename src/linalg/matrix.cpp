#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace sckl::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, double value)
    : rows_(rows), cols_(cols), data_(rows * cols, value) {}

double& Matrix::at(std::size_t r, std::size_t c) {
  require(r < rows_ && c < cols_, "Matrix::at: index out of range");
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  require(r < rows_ && c < cols_, "Matrix::at: index out of range");
  return (*this)(r, c);
}

void Matrix::fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::reshape(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  if (data_.size() < rows * cols) data_.resize(rows * cols);
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::from_rows(const std::vector<Vector>& rows) {
  require(!rows.empty(), "Matrix::from_rows: no rows");
  const std::size_t cols = rows.front().size();
  Matrix m(rows.size(), cols);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    require(rows[r].size() == cols, "Matrix::from_rows: ragged rows");
    std::copy(rows[r].begin(), rows[r].end(), m.row_ptr(r));
  }
  return m;
}

Vector Matrix::column(std::size_t c) const {
  require(c < cols_, "Matrix::column: index out of range");
  Vector v(rows_);
  for (std::size_t r = 0; r < rows_; ++r) v[r] = (*this)(r, c);
  return v;
}

Vector Matrix::row(std::size_t r) const {
  require(r < rows_, "Matrix::row: index out of range");
  return Vector(row_ptr(r), row_ptr(r) + cols_);
}

double Matrix::max_abs_diff(const Matrix& other) const {
  require(rows_ == other.rows_ && cols_ == other.cols_,
          "Matrix::max_abs_diff: shape mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < rows_ * cols_; ++i)
    worst = std::max(worst, std::abs(data_[i] - other.data_[i]));
  return worst;
}

double frobenius_norm(const Matrix& m) {
  double sum = 0.0;
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const double* row = m.row_ptr(r);
    for (std::size_t c = 0; c < m.cols(); ++c) sum += row[c] * row[c];
  }
  return std::sqrt(sum);
}

bool is_symmetric(const Matrix& m, double tol) {
  if (m.rows() != m.cols()) return false;
  for (std::size_t r = 0; r < m.rows(); ++r)
    for (std::size_t c = r + 1; c < m.cols(); ++c)
      if (std::abs(m(r, c) - m(c, r)) > tol) return false;
  return true;
}

}  // namespace sckl::linalg
