#include "linalg/kernel_operator.h"

#include "common/error.h"
#include "linalg/gemm.h"

namespace sckl::linalg {

DenseKernelOperator::DenseKernelOperator(const Matrix& a) : a_(a) {
  require(a.rows() == a.cols(),
          "DenseKernelOperator: matrix must be square");
  require(a.rows() > 0, "DenseKernelOperator: matrix must be non-empty");
}

void DenseKernelOperator::apply(const Vector& x, Vector& y) const {
  require(x.size() == a_.rows(), "DenseKernelOperator: dimension mismatch");
  y = gemv_fast(a_, x);
}

}  // namespace sckl::linalg
