#include "linalg/symmetric_eigen.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <numeric>

#include "common/error.h"

namespace sckl::linalg {
namespace {

// Householder reduction of symmetric `a` (n x n) to tridiagonal form with
// diagonal `d` and subdiagonal `e` (e[0] unused). When accumulate is true,
// `a` is overwritten with the orthogonal transform Q such that
// A = Q T Q^T; otherwise its contents become scratch.
void tridiagonalize(Matrix& a, Vector& d, Vector& e, bool accumulate) {
  const std::size_t n = a.rows();
  d.assign(n, 0.0);
  e.assign(n, 0.0);
  if (n == 1) {
    d[0] = a(0, 0);
    a(0, 0) = 1.0;
    return;
  }

  for (std::size_t i = n - 1; i >= 1; --i) {
    const std::size_t l = i - 1;
    double h = 0.0;
    double scale = 0.0;
    if (l > 0) {
      for (std::size_t k = 0; k <= l; ++k) scale += std::abs(a(i, k));
      if (scale == 0.0) {
        e[i] = a(i, l);
      } else {
        for (std::size_t k = 0; k <= l; ++k) {
          a(i, k) /= scale;
          h += a(i, k) * a(i, k);
        }
        double f = a(i, l);
        double g = f >= 0.0 ? -std::sqrt(h) : std::sqrt(h);
        e[i] = scale * g;
        h -= f * g;
        a(i, l) = f - g;
        f = 0.0;
        for (std::size_t j = 0; j <= l; ++j) {
          if (accumulate) a(j, i) = a(i, j) / h;
          g = 0.0;
          for (std::size_t k = 0; k <= j; ++k) g += a(j, k) * a(i, k);
          for (std::size_t k = j + 1; k <= l; ++k) g += a(k, j) * a(i, k);
          e[j] = g / h;
          f += e[j] * a(i, j);
        }
        const double hh = f / (h + h);
        for (std::size_t j = 0; j <= l; ++j) {
          f = a(i, j);
          g = e[j] - hh * f;
          e[j] = g;
          for (std::size_t k = 0; k <= j; ++k)
            a(j, k) -= f * e[k] + g * a(i, k);
        }
      }
    } else {
      e[i] = a(i, l);
    }
    d[i] = h;
  }

  d[0] = 0.0;
  e[0] = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (accumulate) {
      if (d[i] != 0.0) {
        for (std::size_t j = 0; j < i; ++j) {
          double g = 0.0;
          for (std::size_t k = 0; k < i; ++k) g += a(i, k) * a(k, j);
          for (std::size_t k = 0; k < i; ++k) a(k, j) -= g * a(k, i);
        }
      }
      d[i] = a(i, i);
      a(i, i) = 1.0;
      for (std::size_t j = 0; j < i; ++j) {
        a(j, i) = 0.0;
        a(i, j) = 0.0;
      }
    } else {
      d[i] = a(i, i);
    }
  }
}

// Implicit-shift QL iteration on a symmetric tridiagonal matrix (d, e with
// e[0] unused on input). When z is non-null, its columns are rotated along
// so that on exit column j of z is the eigenvector for d[j].
void ql_implicit(Vector& d, Vector& e, Matrix* z) {
  const std::size_t n = d.size();
  if (n == 0) return;
  for (std::size_t i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;

  // Absolute deflation floor: covariance-kernel matrices are numerically
  // low rank, so whole trailing blocks of d are at machine-noise scale and
  // the classic relative test |e| <= eps (|d_m| + |d_m+1|) never fires.
  // Off-diagonals below eps * ||T|| are genuine zeros at working precision.
  double norm_scale = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    norm_scale = std::max(norm_scale, std::abs(d[i]) + std::abs(e[i]));
  const double absolute_floor =
      std::numeric_limits<double>::epsilon() * norm_scale;

  for (std::size_t l = 0; l < n; ++l) {
    int iterations = 0;
    std::size_t m = 0;
    do {
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::abs(d[m]) + std::abs(d[m + 1]);
        if (std::abs(e[m]) <=
            std::max(std::numeric_limits<double>::epsilon() * dd,
                     absolute_floor))
          break;
      }
      if (m != l) {
        ensure(++iterations <= 50, "symmetric_eigen: QL failed to converge");
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = std::hypot(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + std::copysign(r, g));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        bool underflow_break = false;
        for (std::size_t i = m; i-- > l;) {
          double f = s * e[i];
          const double b = c * e[i];
          r = std::hypot(f, g);
          e[i + 1] = r;
          if (r == 0.0) {
            d[i + 1] -= p;
            e[m] = 0.0;
            underflow_break = true;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          if (z != nullptr) {
            for (std::size_t k = 0; k < z->rows(); ++k) {
              f = (*z)(k, i + 1);
              (*z)(k, i + 1) = s * (*z)(k, i) + c * f;
              (*z)(k, i) = c * (*z)(k, i) - s * f;
            }
          }
        }
        if (underflow_break) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }
}

// Reorders eigenpairs into descending eigenvalue order.
SymmetricEigenResult sort_descending(Vector d, Matrix z) {
  const std::size_t n = d.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&d](std::size_t a, std::size_t b) { return d[a] > d[b]; });
  SymmetricEigenResult result;
  result.values.resize(n);
  const bool with_vectors = !z.empty();
  if (with_vectors) result.vectors = Matrix(z.rows(), n);
  for (std::size_t j = 0; j < n; ++j) {
    result.values[j] = d[order[j]];
    if (with_vectors)
      for (std::size_t k = 0; k < z.rows(); ++k)
        result.vectors(k, j) = z(k, order[j]);
  }
  return result;
}

Vector sorted_descending(Vector d) {
  std::sort(d.begin(), d.end(), std::greater<>());
  return d;
}

}  // namespace

SymmetricEigenResult symmetric_eigen(const Matrix& a) {
  require(a.rows() == a.cols(), "symmetric_eigen: matrix must be square");
  require(a.rows() > 0, "symmetric_eigen: empty matrix");
  Matrix z = a;
  Vector d;
  Vector e;
  tridiagonalize(z, d, e, /*accumulate=*/true);
  ql_implicit(d, e, &z);
  return sort_descending(std::move(d), std::move(z));
}

Vector symmetric_eigenvalues(const Matrix& a) {
  require(a.rows() == a.cols(), "symmetric_eigenvalues: matrix must be square");
  require(a.rows() > 0, "symmetric_eigenvalues: empty matrix");
  Matrix scratch = a;
  Vector d;
  Vector e;
  tridiagonalize(scratch, d, e, /*accumulate=*/false);
  ql_implicit(d, e, nullptr);
  return sorted_descending(std::move(d));
}

SymmetricEigenResult tridiagonal_eigen(const Vector& d, const Vector& e) {
  const std::size_t n = d.size();
  require(n > 0, "tridiagonal_eigen: empty input");
  require(e.size() + 1 == n || (n == 1 && e.empty()),
          "tridiagonal_eigen: off-diagonal must have size n-1");
  Vector dd = d;
  // ql_implicit expects e[0] unused and e[i] the coupling between i-1 and i.
  Vector ee(n, 0.0);
  for (std::size_t i = 1; i < n; ++i) ee[i] = e[i - 1];
  Matrix z = Matrix::identity(n);
  ql_implicit(dd, ee, &z);
  return sort_descending(std::move(dd), std::move(z));
}

Vector tridiagonal_eigenvalues(const Vector& d, const Vector& e) {
  const std::size_t n = d.size();
  require(n > 0, "tridiagonal_eigenvalues: empty input");
  require(e.size() + 1 == n || (n == 1 && e.empty()),
          "tridiagonal_eigenvalues: off-diagonal must have size n-1");
  Vector dd = d;
  Vector ee(n, 0.0);
  for (std::size_t i = 1; i < n; ++i) ee[i] = e[i - 1];
  ql_implicit(dd, ee, nullptr);
  return sorted_descending(std::move(dd));
}

}  // namespace sckl::linalg
