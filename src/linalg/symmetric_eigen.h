// Dense symmetric eigensolver: Householder tridiagonalization followed by
// the implicit-shift QL iteration (the classic EISPACK tred2/tql2 pair,
// reimplemented here). This is the reference solver for the Galerkin
// eigenproblem (eq. 13/15 of the paper) and the validator for the Lanczos
// fast path. Cost is O(n^3); at the paper's n = 1546 it runs in seconds.
#pragma once

#include "linalg/matrix.h"

namespace sckl::linalg {

/// Eigen-decomposition of a symmetric matrix: A = V diag(values) V^T.
/// Eigenvalues are sorted in descending order (the paper indexes lambda_1 as
/// the largest); column j of `vectors` is the unit eigenvector for values[j].
struct SymmetricEigenResult {
  Vector values;
  Matrix vectors;
};

/// Full eigen-decomposition of symmetric `a`. Throws when `a` is not square
/// or the QL iteration fails to converge (pathological input).
SymmetricEigenResult symmetric_eigen(const Matrix& a);

/// Eigenvalues only (skips eigenvector accumulation; ~2x faster).
Vector symmetric_eigenvalues(const Matrix& a);

/// Eigen-decomposition of the symmetric tridiagonal matrix with diagonal `d`
/// (size n) and sub/super-diagonal `e` (size n-1). Used by the Lanczos
/// solver to extract Ritz pairs. Result sorted descending.
SymmetricEigenResult tridiagonal_eigen(const Vector& d, const Vector& e);

/// Eigenvalues only of a symmetric tridiagonal matrix, sorted descending.
Vector tridiagonal_eigenvalues(const Vector& d, const Vector& e);

}  // namespace sckl::linalg
