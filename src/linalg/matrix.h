// Dense row-major matrix and vector types.
//
// The library is self-contained: no BLAS/LAPACK/Eigen. Matrix is the single
// dense container used by the Galerkin assembly (n x n kernel matrix), the
// Cholesky field sampler (N_g x N_g covariance), and the KLE reconstruction
// operator D_lambda (n x r). Element access is unchecked in release builds;
// `at()` provides a checked variant used by tests.
#pragma once

#include <cstddef>
#include <vector>

namespace sckl::linalg {

using Vector = std::vector<double>;

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// Creates a rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols);

  /// Creates a rows x cols matrix filled with `value`.
  Matrix(std::size_t rows, std::size_t cols, double value);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  /// Unchecked element access.
  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked element access; throws sckl::Error when out of range.
  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  /// Pointer to the start of row r (contiguous, cols() elements).
  double* row_ptr(std::size_t r) { return data_.data() + r * cols_; }
  const double* row_ptr(std::size_t r) const {
    return data_.data() + r * cols_;
  }

  /// Raw contiguous storage (row-major).
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Sets every element to `value`.
  void fill(double value);

  /// Re-shapes this matrix to rows x cols, reusing the existing allocation
  /// when it is large enough. Element contents are unspecified afterwards;
  /// callers are expected to overwrite every element. This is the scratch
  /// primitive behind the block samplers, which reuse one latent matrix
  /// across blocks instead of reallocating per block.
  void reshape(std::size_t rows, std::size_t cols);

  /// Returns the transpose.
  Matrix transposed() const;

  /// Returns a rows x rows identity matrix.
  static Matrix identity(std::size_t n);

  /// Builds a matrix from nested initializer-style data; each inner vector
  /// is one row and all rows must have equal length.
  static Matrix from_rows(const std::vector<Vector>& rows);

  /// Extracts column c as a vector.
  Vector column(std::size_t c) const;

  /// Extracts row r as a vector.
  Vector row(std::size_t r) const;

  /// Maximum absolute difference to another matrix of identical shape.
  double max_abs_diff(const Matrix& other) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Frobenius norm of a matrix.
double frobenius_norm(const Matrix& m);

/// True when |m(i,j) - m(j,i)| <= tol for all i, j (square matrices only).
bool is_symmetric(const Matrix& m, double tol = 1e-12);

}  // namespace sckl::linalg
