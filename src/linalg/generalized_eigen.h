// Generalized symmetric eigenproblem  A d = lambda M d  with M SPD.
//
// The paper's Galerkin system (eq. 13) is exactly this form: with the
// piecewise-constant basis, Phi is diagonal and the reduction is trivial
// (eq. 15/16), but the higher-order bases the paper mentions in Sec. 4.2
// produce a non-diagonal mass matrix M. Standard reduction: factor
// M = L L^T, solve the ordinary symmetric problem
//   C u = lambda u,  C = L^{-1} A L^{-T},
// and back-transform d = L^{-T} u. The d vectors come out M-orthonormal
// (d_i^T M d_j = delta_ij), which is the Galerkin analogue of orthonormal
// eigenfunctions.
//
// Resilience: mass matrices assembled from very smooth kernels (or refined
// P1 meshes with near-degenerate elements) can be numerically semi-definite.
// Instead of dying on the Cholesky, the solver falls back to
// cholesky_with_jitter and records the regularization it had to apply in the
// optional GeneralizedEigenInfo out-parameter.
#pragma once

#include "linalg/cholesky.h"
#include "linalg/symmetric_eigen.h"

namespace sckl::linalg {

/// Telemetry of one generalized_symmetric_eigen call.
struct GeneralizedEigenInfo {
  bool mass_spd = true;       // first (exact) Cholesky of M succeeded
  double mass_jitter = 0.0;   // diagonal jitter the fallback had to add
  CholeskyFailure failure;    // failing pivot of the exact factorization
};

/// Solves A d = lambda M d for symmetric A and SPD M. Eigenvalues descend;
/// column j of `vectors` is d_j with d_j^T M d_j = 1. A numerically
/// semi-definite M is regularized with the smallest workable diagonal jitter
/// (recorded in `info`); only a structurally indefinite M still throws.
SymmetricEigenResult generalized_symmetric_eigen(
    const Matrix& a, const Matrix& m, GeneralizedEigenInfo* info = nullptr);

/// In-place forward substitution: solves L X = B for X (L lower-triangular,
/// from a Cholesky factor), overwriting B. B is n x k.
void solve_lower_triangular_inplace(const Matrix& lower, Matrix& b);

/// In-place back substitution: solves L^T X = B for X, overwriting B.
void solve_lower_transposed_inplace(const Matrix& lower, Matrix& b);

}  // namespace sckl::linalg
