// Cholesky factorization.
//
// Algorithm 1 of the paper factors the N_g x N_g gate-location covariance
// matrix once and multiplies every Monte Carlo sample block by the upper
// factor U (K = U^T U). We store the lower factor L (K = L L^T); U = L^T, so
// sampling uses gemm_bt with L directly.
#pragma once

#include <optional>

#include "linalg/matrix.h"

namespace sckl::linalg {

/// Result of a Cholesky factorization: lower-triangular L with K = L L^T.
struct CholeskyFactor {
  Matrix lower;

  /// Solves K x = b via forward/back substitution.
  Vector solve(const Vector& b) const;

  /// log(det(K)) = 2 * sum(log(L_ii)); useful for Gaussian likelihoods.
  double log_determinant() const;
};

/// Factors a symmetric positive-definite matrix. Throws sckl::Error when the
/// matrix is not positive definite (non-positive pivot).
CholeskyFactor cholesky(const Matrix& k);

/// Like cholesky() but returns nullopt instead of throwing; used by the PSD
/// validity checker where "not PSD" is an expected answer.
std::optional<CholeskyFactor> try_cholesky(const Matrix& k);

/// Factors K + jitter*I, growing jitter geometrically from `initial_jitter`
/// until the factorization succeeds (at most `max_attempts` tries). Returns
/// the factor and the jitter used. Covariance matrices built from very smooth
/// kernels (the Gaussian kernel of Fig. 1a) are numerically semi-definite;
/// the paper's Algorithm 1 needs exactly this regularization in practice.
struct JitteredCholesky {
  CholeskyFactor factor;
  double jitter;
};
JitteredCholesky cholesky_with_jitter(Matrix k, double initial_jitter = 1e-10,
                                      int max_attempts = 12);

}  // namespace sckl::linalg
