// Cholesky factorization.
//
// Algorithm 1 of the paper factors the N_g x N_g gate-location covariance
// matrix once and multiplies every Monte Carlo sample block by the upper
// factor U (K = U^T U). We store the lower factor L (K = L L^T); U = L^T, so
// sampling uses gemm_bt with L directly.
//
// Failure diagnostics: a non-SPD input is reported with the index and value
// of the failing pivot (the eliminated diagonal entry that came out
// non-positive), which distinguishes "semi-definite by a rounding hair"
// (tiny negative pivot deep in the elimination — jitter will fix it) from
// "structurally indefinite input" (large negative pivot early on). The
// robust::FaultSite::kCholeskyPivot injection site makes both try_cholesky
// and the jitter ladder fail on demand so fallback chains are testable.
#pragma once

#include <cstddef>
#include <optional>

#include "linalg/matrix.h"

namespace sckl::linalg {

/// Result of a Cholesky factorization: lower-triangular L with K = L L^T.
struct CholeskyFactor {
  Matrix lower;

  /// Solves K x = b via forward/back substitution.
  Vector solve(const Vector& b) const;

  /// log(det(K)) = 2 * sum(log(L_ii)); useful for Gaussian likelihoods.
  double log_determinant() const;
};

/// Diagnostics of a failed factorization: which pivot broke, and its value
/// after elimination (NaN when the failure was fault-injected).
struct CholeskyFailure {
  std::size_t pivot_index = 0;
  double pivot_value = 0.0;
};

/// Factors a symmetric positive-definite matrix. Throws sckl::Error (code
/// kNotPositiveDefinite) naming the failing pivot index and value when the
/// matrix is not positive definite.
CholeskyFactor cholesky(const Matrix& k);

/// Like cholesky() but returns nullopt instead of throwing; used by the PSD
/// validity checker where "not PSD" is an expected answer. When `failure` is
/// non-null it receives the failing pivot diagnostics on a nullopt return.
std::optional<CholeskyFactor> try_cholesky(const Matrix& k,
                                           CholeskyFailure* failure = nullptr);

/// Factors K + jitter*I, growing jitter geometrically from `initial_jitter`
/// until the factorization succeeds (at most `max_attempts` tries). Returns
/// the factor and the jitter used. Covariance matrices built from very smooth
/// kernels (the Gaussian kernel of Fig. 1a) are numerically semi-definite;
/// the paper's Algorithm 1 needs exactly this regularization in practice.
struct JitteredCholesky {
  CholeskyFactor factor;
  double jitter;
};
JitteredCholesky cholesky_with_jitter(Matrix k, double initial_jitter = 1e-10,
                                      int max_attempts = 12);

}  // namespace sckl::linalg
