#include "linalg/hmat.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/error.h"
#include "common/thread_pool.h"
#include "linalg/blas.h"
#include "linalg/gemm.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sckl::linalg {
namespace {

double box_diameter(const TileNode& node) {
  return std::hypot(node.max_x - node.min_x, node.max_y - node.min_y);
}

double box_distance(const TileNode& s, const TileNode& t) {
  const double dx =
      std::max({0.0, s.min_x - t.max_x, t.min_x - s.max_x});
  const double dy =
      std::max({0.0, s.min_y - t.max_y, t.min_y - s.max_y});
  return std::hypot(dx, dy);
}

bool admissible(const TileNode& s, const TileNode& t, double eta) {
  const double diam = std::max(box_diameter(s), box_diameter(t));
  return diam <= eta * box_distance(s, t);
}

}  // namespace

void EntrySource::row_slice(std::size_t i, const std::size_t* cols,
                            std::size_t count, double* out) const {
  for (std::size_t c = 0; c < count; ++c) out[c] = entry(i, cols[c]);
}

TileTree::TileTree(const std::vector<double>& xs,
                   const std::vector<double>& ys, std::size_t leaf_size) {
  require(xs.size() == ys.size(), "TileTree: coordinate arrays disagree");
  require(!xs.empty(), "TileTree: need at least one point");
  require(leaf_size >= 1, "TileTree: leaf size must be positive");
  perm_.resize(xs.size());
  std::iota(perm_.begin(), perm_.end(), std::size_t{0});
  // Two children per split, so at most 2 * ceil(n / leaf) - 1 nodes.
  nodes_.reserve(2 * (xs.size() / leaf_size + 1));
  build(xs, ys, 0, xs.size(), leaf_size, 1);
}

std::size_t TileTree::build(const std::vector<double>& xs,
                            const std::vector<double>& ys, std::size_t begin,
                            std::size_t end, std::size_t leaf_size,
                            std::size_t level) {
  const std::size_t id = nodes_.size();
  nodes_.push_back(TileNode{});
  TileNode node;
  node.begin = begin;
  node.end = end;
  node.min_x = node.min_y = std::numeric_limits<double>::infinity();
  node.max_x = node.max_y = -std::numeric_limits<double>::infinity();
  for (std::size_t p = begin; p < end; ++p) {
    const std::size_t i = perm_[p];
    node.min_x = std::min(node.min_x, xs[i]);
    node.max_x = std::max(node.max_x, xs[i]);
    node.min_y = std::min(node.min_y, ys[i]);
    node.max_y = std::max(node.max_y, ys[i]);
  }
  depth_ = std::max(depth_, level);

  if (end - begin <= leaf_size) {
    ++num_leaves_;
    nodes_[id] = node;
    return id;
  }

  // Median split along the longer box axis; ties in the sort key are broken
  // by original index so the permutation (and with it every downstream
  // factor) is a pure function of the input points.
  const bool split_x = (node.max_x - node.min_x) >= (node.max_y - node.min_y);
  const std::vector<double>& coord = split_x ? xs : ys;
  const std::size_t mid = begin + (end - begin) / 2;
  std::nth_element(perm_.begin() + begin, perm_.begin() + mid,
                   perm_.begin() + end,
                   [&coord](std::size_t a, std::size_t b) {
                     if (coord[a] != coord[b]) return coord[a] < coord[b];
                     return a < b;
                   });
  node.left = static_cast<int>(
      build(xs, ys, begin, mid, leaf_size, level + 1));
  node.right = static_cast<int>(build(xs, ys, mid, end, leaf_size, level + 1));
  nodes_[id] = node;
  return id;
}

AcaResult aca_compress(const EntrySource& source, const std::size_t* rows,
                       std::size_t num_rows, const std::size_t* cols,
                       std::size_t num_cols, double tolerance,
                       std::size_t max_rank) {
  require(num_rows > 0 && num_cols > 0, "aca_compress: empty block");
  require(tolerance > 0.0, "aca_compress: tolerance must be positive");
  const std::size_t rank_limit =
      std::min({max_rank, num_rows, num_cols});

  std::vector<Vector> us, vs;  // residual crosses accumulated so far
  std::vector<char> row_used(num_rows, 0);
  Vector row(num_cols), col(num_rows);
  std::size_t next_row = 0;
  double frob2 = 0.0;  // running ||U V^T||_F^2 estimate
  bool converged = false;

  // Residual row i of the current approximation, written into `out`;
  // returns its squared norm.
  const auto residual_row = [&](std::size_t i, double* out) {
    source.row_slice(rows[i], cols, num_cols, out);
    for (std::size_t l = 0; l < us.size(); ++l) {
      const double w = us[l][i];
      if (w != 0.0)
        for (std::size_t j = 0; j < num_cols; ++j) out[j] -= w * vs[l][j];
    }
    double norm2 = 0.0;
    for (std::size_t j = 0; j < num_cols; ++j) norm2 += out[j] * out[j];
    return norm2;
  };

  // Stagnation guard. Partial pivoting only ever sees the rows its own walk
  // visits; on kernels whose entries decay fast across a block (Gaussian
  // far field) the walk can die inside a low-magnitude region and the
  // last-cross test fires while unexplored rows still carry most of the
  // residual. Before accepting convergence, probe a few evenly spaced
  // unused rows (deterministic, so the build stays a pure function of its
  // inputs); if any true residual row exceeds the tolerance, resume the
  // factorization from the worst offender instead of stopping.
  Vector probe(num_cols);
  const auto find_stagnant_row = [&]() {
    constexpr std::size_t kVerifyProbes = 4;
    std::vector<std::size_t> unused;
    unused.reserve(num_rows);
    for (std::size_t i = 0; i < num_rows; ++i)
      if (!row_used[i]) unused.push_back(i);
    if (unused.empty()) return num_rows;  // sentinel: nothing left to probe
    const std::size_t stride =
        std::max<std::size_t>(unused.size() / kVerifyProbes, 1);
    std::size_t worst_row = num_rows;
    double worst_norm2 = tolerance * tolerance * frob2;
    for (std::size_t p = 0; p < unused.size(); p += stride) {
      const std::size_t i = unused[p];
      const double norm2 = residual_row(i, probe.data());
      if (norm2 > worst_norm2) {
        worst_norm2 = norm2;
        worst_row = i;
      }
    }
    return worst_row;  // num_rows when every probe is below tolerance
  };

  while (us.size() < rank_limit) {
    // Residual row at the current pivot row.
    residual_row(next_row, row.data());
    std::size_t pivot_col = 0;
    for (std::size_t j = 1; j < num_cols; ++j)
      if (std::abs(row[j]) > std::abs(row[pivot_col])) pivot_col = j;
    const double pivot = row[pivot_col];
    if (std::abs(pivot) < 1e-300) {
      // Residual row numerically zero: this row (and, for smooth kernels,
      // usually the whole remaining block) is exhausted — but verify before
      // believing it, and resume elsewhere if the block is not done.
      row_used[next_row] = 1;
      const std::size_t resume = find_stagnant_row();
      if (resume == num_rows) {
        converged = true;
        break;
      }
      obs::counter("sckl.linalg.hmat.aca_restarts").add(1);
      next_row = resume;
      continue;
    }

    Vector v = row;
    scale(1.0 / pivot, v);
    // Residual column at the pivot column. The source is symmetric, so the
    // column slice is a row slice of the transposed index.
    source.row_slice(cols[pivot_col], rows, num_rows, col.data());
    for (std::size_t l = 0; l < us.size(); ++l) {
      const double w = vs[l][pivot_col];
      if (w != 0.0) axpy(-w, us[l], col);
    }
    Vector u = std::move(col);
    col.resize(num_rows);
    row_used[next_row] = 1;

    const double uu = dot(u, u);
    const double vv = dot(v, v);
    // Stopping rule: a cross whose norm is already below tolerance relative
    // to the running ||U V^T||_F estimate is dropped, not stored — an exact
    // rank-k block therefore yields rank exactly k instead of k + 1. The
    // small cross only proves this *row neighbourhood* is exhausted, so the
    // stagnation guard re-checks a sample of untouched rows first.
    if (!us.empty() && std::sqrt(uu * vv) <= tolerance * std::sqrt(frob2)) {
      const std::size_t resume = find_stagnant_row();
      if (resume == num_rows) {
        converged = true;
        break;
      }
      obs::counter("sckl.linalg.hmat.aca_restarts").add(1);
      next_row = resume;
      continue;
    }

    // ||S_k||_F^2 = ||S_{k-1}||_F^2 + 2 sum_l (u_k.u_l)(v_l.v_k) + |u|^2|v|^2.
    double cross = 0.0;
    for (std::size_t l = 0; l < us.size(); ++l)
      cross += dot(u, us[l]) * dot(vs[l], v);
    frob2 = std::max(0.0, frob2 + 2.0 * cross + uu * vv);
    us.push_back(std::move(u));
    vs.push_back(std::move(v));

    // Next pivot row: largest |u| entry among unused rows.
    const Vector& last_u = us.back();
    bool found = false;
    double best = -1.0;
    for (std::size_t i = 0; i < num_rows; ++i) {
      if (row_used[i]) continue;
      const double mag = std::abs(last_u[i]);
      if (mag > best) {
        best = mag;
        next_row = i;
        found = true;
      }
    }
    if (!found) {
      // Every row served as a pivot: the factorization is exact.
      converged = true;
      break;
    }
  }

  AcaResult result;
  result.rank = us.size();
  result.converged = converged;
  result.u = Matrix(num_rows, result.rank);
  result.v = Matrix(num_cols, result.rank);
  for (std::size_t l = 0; l < result.rank; ++l) {
    for (std::size_t i = 0; i < num_rows; ++i) result.u(i, l) = us[l][i];
    for (std::size_t j = 0; j < num_cols; ++j) result.v(j, l) = vs[l][j];
  }
  return result;
}

HMatrix::HMatrix(const EntrySource& source, const std::vector<double>& xs,
                 const std::vector<double>& ys, const HmatOptions& options)
    : tree_(xs, ys, std::max<std::size_t>(options.leaf_size, 1)) {
  require(source.dim() == xs.size(),
          "HMatrix: source dimension must match the point count");
  require(options.admissibility > 0.0,
          "HMatrix: admissibility parameter must be positive");
  require(options.aca_tolerance > 0.0,
          "HMatrix: ACA tolerance must be positive");
  require(options.max_rank > 0, "HMatrix: rank cap must be positive");
  obs::Span span("linalg.hmat.build");

  inv_perm_.resize(tree_.num_points());
  for (std::size_t p = 0; p < tree_.num_points(); ++p)
    inv_perm_[tree_.perm()[p]] = p;

  // Pass 1 (serial, geometry only): enumerate the block partition of the
  // upper triangle. Pass 2 (parallel): fill each block independently — the
  // factors are a pure function of (source, block), so the build is
  // deterministic for any worker count.
  enumerate_blocks(0, 0, options.admissibility, options.leaf_size);

  const std::size_t threads = std::min<std::size_t>(
      ThreadPool::resolve_num_threads(options.num_threads), blocks_.size());
  apply_threads_ = std::max<std::size_t>(threads, 1);
  std::atomic<std::size_t> next_block{0};
  std::atomic<std::size_t> bytes{0};
  std::atomic<bool> over_budget{false};
  const auto fill_job = [&](std::size_t) {
    for (;;) {
      const std::size_t b = next_block.fetch_add(1);
      if (b >= blocks_.size() || over_budget.load()) return;
      std::size_t block_bytes = 0;
      fill_block(source, blocks_[b], options, &block_bytes);
      const std::size_t total = bytes.fetch_add(block_bytes) + block_bytes;
      if (options.max_bytes != 0 && total > options.max_bytes) {
        over_budget.store(true);
        throw Error("HMatrix: compressed storage (" + std::to_string(total) +
                        " bytes) exceeded the max_bytes budget (" +
                        std::to_string(options.max_bytes) + ") at n = " +
                        std::to_string(dim()),
                    ErrorCode::kOverloaded);
      }
    }
  };
  if (threads > 1) {
    ThreadPool pool(threads);
    pool.run(fill_job);
  } else {
    fill_job(0);
  }

  // Stats scan (serial, cheap): every number is derived from the filled
  // blocks, so it is identical for any build thread count.
  stats_.dim = dim();
  stats_.leaves = tree_.num_leaves();
  stats_.tree_depth = tree_.depth();
  std::size_t rank_sum = 0;
  for (const Block& block : blocks_) {
    if (block.lowrank) {
      ++stats_.lowrank_blocks;
      const std::size_t r = block.u.cols();
      stats_.max_rank = std::max(stats_.max_rank, r);
      rank_sum += r;
      stats_.compressed_bytes +=
          sizeof(double) * r * (block.u.rows() + block.v.rows());
      if (!block.aca_converged) ++stats_.rank_cap_hits;
    } else {
      ++stats_.dense_blocks;
      stats_.compressed_bytes +=
          sizeof(double) * block.dense.rows() * block.dense.cols();
    }
  }
  if (stats_.lowrank_blocks > 0)
    stats_.mean_rank =
        static_cast<double>(rank_sum) / static_cast<double>(stats_.lowrank_blocks);
  const double dense_bytes = 8.0 * static_cast<double>(dim()) *
                             static_cast<double>(dim());
  stats_.compression = static_cast<double>(stats_.compressed_bytes) /
                       std::max(dense_bytes, 1.0);

  obs::counter("sckl.linalg.hmat.builds").add(1);
  obs::counter("sckl.linalg.hmat.lowrank_blocks").add(stats_.lowrank_blocks);
  obs::counter("sckl.linalg.hmat.dense_blocks").add(stats_.dense_blocks);
  obs::counter("sckl.linalg.hmat.compressed_bytes")
      .add(stats_.compressed_bytes);
  if (stats_.rank_cap_hits > 0)
    obs::counter("sckl.linalg.hmat.rank_cap_hits").add(stats_.rank_cap_hits);
}

void HMatrix::set_apply_threads(std::size_t num_threads) {
  apply_threads_ = std::max<std::size_t>(
      std::min(ThreadPool::resolve_num_threads(num_threads), blocks_.size()),
      1);
}

void HMatrix::enumerate_blocks(int s, int t, double eta,
                               std::size_t leaf_size) {
  const TileNode& ns = tree_.nodes()[s];
  const TileNode& nt = tree_.nodes()[t];
  if (s == t) {
    if (ns.leaf()) {
      Block block;
      block.row_node = s;
      block.col_node = s;
      blocks_.push_back(block);
      return;
    }
    enumerate_blocks(ns.left, ns.left, eta, leaf_size);
    enumerate_blocks(ns.left, ns.right, eta, leaf_size);
    enumerate_blocks(ns.right, ns.right, eta, leaf_size);
    return;
  }
  // Off-diagonal: s's permuted range strictly precedes t's (the recursion
  // only descends that way), so every stored block lies in the upper
  // triangle; apply() mirrors it for the lower one.
  if (admissible(ns, nt, eta)) {
    Block block;
    block.row_node = s;
    block.col_node = t;
    block.lowrank = true;
    blocks_.push_back(block);
    return;
  }
  if (ns.leaf() && nt.leaf()) {
    Block block;
    block.row_node = s;
    block.col_node = t;
    blocks_.push_back(block);
    return;
  }
  // Refine the larger side (a leaf is never split).
  const bool split_s = !ns.leaf() && (nt.leaf() || ns.size() >= nt.size());
  if (split_s) {
    enumerate_blocks(ns.left, t, eta, leaf_size);
    enumerate_blocks(ns.right, t, eta, leaf_size);
  } else {
    enumerate_blocks(s, nt.left, eta, leaf_size);
    enumerate_blocks(s, nt.right, eta, leaf_size);
  }
}

void HMatrix::fill_block(const EntrySource& source, Block& block,
                         const HmatOptions& options,
                         std::size_t* bytes_out) const {
  const TileNode& rn = tree_.nodes()[block.row_node];
  const TileNode& cn = tree_.nodes()[block.col_node];
  const std::size_t m = rn.size();
  const std::size_t n = cn.size();
  std::vector<std::size_t> rows(m), cols(n);
  for (std::size_t i = 0; i < m; ++i) rows[i] = tree_.perm()[rn.begin + i];
  for (std::size_t j = 0; j < n; ++j) cols[j] = tree_.perm()[cn.begin + j];

  if (block.lowrank) {
    AcaResult aca =
        aca_compress(source, rows.data(), m, cols.data(), n,
                     options.aca_tolerance, options.max_rank);
    block.u = std::move(aca.u);
    block.v = std::move(aca.v);
    block.aca_converged = aca.converged;
    *bytes_out = sizeof(double) * aca.rank * (m + n);
    return;
  }
  block.dense = Matrix(m, n);
  for (std::size_t i = 0; i < m; ++i)
    source.row_slice(rows[i], cols.data(), n, block.dense.row_ptr(i));
  *bytes_out = sizeof(double) * m * n;
}

void HMatrix::apply_block(const Block& block, const Vector& xp,
                          Vector& yp) const {
  const TileNode& rn = tree_.nodes()[block.row_node];
  const TileNode& cn = tree_.nodes()[block.col_node];
  const std::size_t m = rn.size();
  const std::size_t n = cn.size();
  Vector xt(xp.begin() + cn.begin, xp.begin() + cn.end);

  if (block.lowrank) {
    if (block.u.cols() == 0) return;  // numerically zero block
    // (s, t): y_s += U (V^T x_t); mirror: y_t += V (U^T x_s).
    const Vector t1 = gemv_transposed_fast(block.v, xt);
    const Vector ys = gemv_fast(block.u, t1);
    for (std::size_t i = 0; i < m; ++i) yp[rn.begin + i] += ys[i];
    const Vector xs(xp.begin() + rn.begin, xp.begin() + rn.end);
    const Vector t2 = gemv_transposed_fast(block.u, xs);
    const Vector yt = gemv_fast(block.v, t2);
    for (std::size_t j = 0; j < n; ++j) yp[cn.begin + j] += yt[j];
    return;
  }

  const Vector ys = gemv_fast(block.dense, xt);
  for (std::size_t i = 0; i < m; ++i) yp[rn.begin + i] += ys[i];
  if (block.row_node != block.col_node) {
    const Vector xs(xp.begin() + rn.begin, xp.begin() + rn.end);
    const Vector yt = gemv_transposed_fast(block.dense, xs);
    for (std::size_t j = 0; j < n; ++j) yp[cn.begin + j] += yt[j];
  }
}

void HMatrix::apply(const Vector& x, Vector& y) const {
  const std::size_t n = dim();
  require(x.size() == n, "HMatrix::apply: dimension mismatch");
  obs::Span span("linalg.hmat.apply");
  {
    static obs::Counter& matvecs = obs::counter("sckl.linalg.hmat.matvecs");
    matvecs.add(1);
  }

  Vector xp(n);
  for (std::size_t p = 0; p < n; ++p) xp[p] = x[tree_.perm()[p]];

  Vector yp(n, 0.0);
  if (apply_threads_ <= 1) {
    for (const Block& block : blocks_) apply_block(block, xp, yp);
  } else {
    // Blocks are statically assigned round-robin and every worker writes a
    // private output, merged in worker order below — the result is a pure
    // function of (operator, x, thread count).
    std::vector<Vector> partial(apply_threads_);
    ThreadPool pool(apply_threads_);
    pool.run([&](std::size_t w) {
      Vector& local = partial[w];
      local.assign(n, 0.0);
      for (std::size_t b = w; b < blocks_.size(); b += apply_threads_)
        apply_block(blocks_[b], xp, local);
    });
    for (const Vector& local : partial) axpy(1.0, local, yp);
  }

  y.resize(n);
  for (std::size_t p = 0; p < n; ++p) y[tree_.perm()[p]] = yp[p];
}

}  // namespace sckl::linalg
