#include "linalg/jacobi_eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"

namespace sckl::linalg {
namespace {

double off_diagonal_norm(const Matrix& a) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = i + 1; j < a.cols(); ++j) sum += a(i, j) * a(i, j);
  return std::sqrt(2.0 * sum);
}

}  // namespace

SymmetricEigenResult jacobi_eigen(const Matrix& input, int max_sweeps,
                                  double tolerance) {
  require(input.rows() == input.cols(), "jacobi_eigen: matrix must be square");
  require(input.rows() > 0, "jacobi_eigen: empty matrix");
  const std::size_t n = input.rows();
  Matrix a = input;
  Matrix v = Matrix::identity(n);
  const double scale = std::max(frobenius_norm(a), 1e-300);

  bool converged = false;
  for (int sweep = 0; sweep < max_sweeps && !converged; ++sweep) {
    if (off_diagonal_norm(a) <= tolerance * scale) {
      converged = true;
      break;
    }
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::abs(apq) <= 1e-300) continue;
        const double theta = (a(q, q) - a(p, p)) / (2.0 * apq);
        const double t = std::copysign(
            1.0 / (std::abs(theta) + std::sqrt(theta * theta + 1.0)), theta);
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  ensure(converged || off_diagonal_norm(a) <= tolerance * scale * 10.0,
         "jacobi_eigen: failed to converge");

  Vector d(n);
  for (std::size_t i = 0; i < n; ++i) d[i] = a(i, i);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&d](std::size_t x, std::size_t y) { return d[x] > d[y]; });

  SymmetricEigenResult result;
  result.values.resize(n);
  result.vectors = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    result.values[j] = d[order[j]];
    for (std::size_t k = 0; k < n; ++k)
      result.vectors(k, j) = v(k, order[j]);
  }
  return result;
}

}  // namespace sckl::linalg
