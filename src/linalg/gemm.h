// Cache-blocked GEMM/GEMV with runtime SIMD dispatch and a bit-exact
// determinism contract.
//
// This is the sampling hot path: every field sampler reduces a block of
// samples to one `samples x r x locations` product (Algorithm 2's
// p_delta = D_lambda xi applied to a whole latent matrix at once), so the
// kernels here set the throughput ceiling for Monte Carlo SSTA and the
// serving layer above it.
//
// Determinism contract (the PR 4 invariant, extended to SIMD):
//
//   Every output element C(i, j) is computed as a single fused-multiply-add
//   chain over k in strictly ascending order:
//
//     c = 0 (or the prior C value for gemm_add)
//     for k = 0 .. K-1:  c = fma(A(i,k), B(k,j), c)
//
//   Three properties make the result bit-identical everywhere:
//    1. fma is correctly rounded (IEEE 754), in hardware (vfmadd) and in
//       the libm fallback alike, so the same chain gives the same bits on
//       any target.
//    2. Vectorization is only ever across *output elements* (SIMD lanes
//       hold different j's), never across k within one element, so the
//       per-element chain order is target-independent.
//    3. Spilling a partial sum to memory and reloading it is exact for
//       doubles, so cache blocking in k (and any i/j partitioning) cannot
//       perturb bits either.
//
//   Consequently scalar, AVX2/FMA, and AVX-512 kernels agree bit-for-bit,
//   as do any block shapes and thread partitions built on top of them.
//   The kernels deliberately avoid value-dependent shortcuts (e.g. the
//   naive gemm's skip of zero A elements, which is not bit-safe for -0.0
//   or NaN propagation).
//
// Dispatch: the widest target supported by the CPU is detected once via
// cpuid (__builtin_cpu_supports) and can be narrowed with the SCKL_SIMD
// environment variable ("scalar", "avx2", "avx512") or the
// set_simd_target() test hook. Requesting a target the CPU lacks falls
// back to the detected one; "scalar" is always honored. On hardware with
// FMA the scalar path still uses the hardware instruction (same bits,
// libm-call speed avoided), so forcing "scalar" tests the portable code
// path without a 20x slowdown.
#pragma once

#include <cstddef>

#include "linalg/matrix.h"

namespace sckl::linalg {

/// Instruction-set targets for the blocked kernels, narrowest first.
enum class SimdTarget { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// Short lowercase name ("scalar", "avx2", "avx512") for logs and bench
/// records.
const char* simd_target_name(SimdTarget target);

/// Widest target this CPU supports (cpuid, computed once).
SimdTarget detected_simd_target();

/// True when `target` can run on this CPU. kScalar is always supported.
bool simd_target_supported(SimdTarget target);

/// Target the kernels will actually use: the SCKL_SIMD override (resolved
/// once, on first use) clamped to what the CPU supports, else the detected
/// target, unless set_simd_target() replaced it.
SimdTarget active_simd_target();

/// Test hook: forces the active target. Requires simd_target_supported().
void set_simd_target(SimdTarget target);

/// Undoes set_simd_target(), returning to the SCKL_SIMD / detected
/// resolution.
void reset_simd_target();

/// C += A * B (A: m x k, B: k x n, C: m x n, shapes must already agree).
void gemm_add(const Matrix& a, const Matrix& b, Matrix& c);

/// C = A * B, reshaping C to m x n (allocation reused when large enough).
void gemm_into(const Matrix& a, const Matrix& b, Matrix& c);

/// Returns A * B.
Matrix gemm_fast(const Matrix& a, const Matrix& b);

/// y = A * x with the same determinism contract: each y(i) is an 8-lane
/// interleaved fma chain (lane l accumulates elements k = l mod 8) folded
/// by a fixed pairwise tree, identical across all targets. Used by the
/// Lanczos matvec so cold KLE solves ride the same kernels.
Vector gemv_fast(const Matrix& a, const Vector& x);

/// y = A^T * x (A: k x n, x: k, y: n), computed column-major-free as k
/// ascending fma chains per output — bit-identical to the corresponding
/// row of gemm_fast(x_as_row, A). This keeps single-vector reconstruction
/// consistent with block reconstruction.
Vector gemv_transposed_fast(const Matrix& a, const Vector& x);

}  // namespace sckl::linalg
