#include "linalg/blas.h"

#include <cmath>

#include "common/error.h"

namespace sckl::linalg {

double dot(const Vector& x, const Vector& y) {
  require(x.size() == y.size(), "dot: size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) sum += x[i] * y[i];
  return sum;
}

double norm2(const Vector& x) { return std::sqrt(dot(x, x)); }

void axpy(double alpha, const Vector& x, Vector& y) {
  require(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(double alpha, Vector& x) {
  for (auto& value : x) value *= alpha;
}

Vector gemv(const Matrix& a, const Vector& x) {
  require(a.cols() == x.size(), "gemv: shape mismatch");
  Vector y(a.rows(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double* row = a.row_ptr(r);
    double sum = 0.0;
    for (std::size_t c = 0; c < a.cols(); ++c) sum += row[c] * x[c];
    y[r] = sum;
  }
  return y;
}

Vector gemv_transposed(const Matrix& a, const Vector& x) {
  require(a.rows() == x.size(), "gemv_transposed: shape mismatch");
  Vector y(a.cols(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double* row = a.row_ptr(r);
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::size_t c = 0; c < a.cols(); ++c) y[c] += xr * row[c];
  }
  return y;
}

Matrix gemm(const Matrix& a, const Matrix& b) {
  require(a.cols() == b.rows(), "gemm: shape mismatch");
  Matrix c(a.rows(), b.cols());
  // i-k-j ordering: the inner loop is a contiguous axpy over C's row, which
  // vectorizes well for row-major storage.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double* crow = c.row_ptr(i);
    const double* arow = a.row_ptr(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = arow[k];
      if (aik == 0.0) continue;
      const double* brow = b.row_ptr(k);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Matrix gemm_bt(const Matrix& a, const Matrix& b) {
  require(a.cols() == b.cols(), "gemm_bt: shape mismatch");
  Matrix c(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.row_ptr(i);
    double* crow = c.row_ptr(i);
    for (std::size_t j = 0; j < b.rows(); ++j) {
      const double* brow = b.row_ptr(j);
      double sum = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) sum += arow[k] * brow[k];
      crow[j] = sum;
    }
  }
  return c;
}

Matrix gram(const Matrix& a) {
  Matrix g(a.cols(), a.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double* row = a.row_ptr(r);
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const double ri = row[i];
      if (ri == 0.0) continue;
      double* grow = g.row_ptr(i);
      for (std::size_t j = i; j < a.cols(); ++j) grow[j] += ri * row[j];
    }
  }
  for (std::size_t i = 0; i < a.cols(); ++i)
    for (std::size_t j = 0; j < i; ++j) g(i, j) = g(j, i);
  return g;
}

}  // namespace sckl::linalg
