#include "linalg/generalized_eigen.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.h"

namespace sckl::linalg {

void solve_lower_triangular_inplace(const Matrix& lower, Matrix& b) {
  const std::size_t n = lower.rows();
  require(lower.cols() == n && b.rows() == n,
          "solve_lower_triangular_inplace: shape mismatch");
  for (std::size_t i = 0; i < n; ++i) {
    const double* lrow = lower.row_ptr(i);
    double* brow = b.row_ptr(i);
    for (std::size_t k = 0; k < i; ++k) {
      const double lik = lrow[k];
      if (lik == 0.0) continue;
      const double* bk = b.row_ptr(k);
      for (std::size_t j = 0; j < b.cols(); ++j) brow[j] -= lik * bk[j];
    }
    const double inv = 1.0 / lrow[i];
    for (std::size_t j = 0; j < b.cols(); ++j) brow[j] *= inv;
  }
}

void solve_lower_transposed_inplace(const Matrix& lower, Matrix& b) {
  const std::size_t n = lower.rows();
  require(lower.cols() == n && b.rows() == n,
          "solve_lower_transposed_inplace: shape mismatch");
  for (std::size_t ii = n; ii-- > 0;) {
    double* brow = b.row_ptr(ii);
    for (std::size_t k = ii + 1; k < n; ++k) {
      const double lki = lower(k, ii);
      if (lki == 0.0) continue;
      const double* bk = b.row_ptr(k);
      for (std::size_t j = 0; j < b.cols(); ++j) brow[j] -= lki * bk[j];
    }
    const double inv = 1.0 / lower(ii, ii);
    for (std::size_t j = 0; j < b.cols(); ++j) brow[j] *= inv;
  }
}

SymmetricEigenResult generalized_symmetric_eigen(const Matrix& a,
                                                 const Matrix& m,
                                                 GeneralizedEigenInfo* info) {
  const std::size_t n = a.rows();
  require(a.cols() == n, "generalized_symmetric_eigen: A must be square");
  require(m.rows() == n && m.cols() == n,
          "generalized_symmetric_eigen: M shape mismatch");

  // Exact factorization first; a numerically semi-definite mass matrix (the
  // routine Gaussian-kernel case) falls back to the jitter ladder instead of
  // killing the solve. Scale the initial jitter to the matrix so the
  // regularization stays relatively tiny.
  CholeskyFailure mass_failure;
  std::optional<CholeskyFactor> exact = try_cholesky(m, &mass_failure);
  CholeskyFactor factor;
  if (exact.has_value()) {
    factor = std::move(*exact);
    if (info != nullptr) *info = GeneralizedEigenInfo{};
  } else {
    double max_diag = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      max_diag = std::max(max_diag, std::abs(m(i, i)));
    const double initial_jitter = std::max(1e-14 * max_diag, 1e-300);
    JitteredCholesky jittered;
    try {
      jittered = cholesky_with_jitter(m, initial_jitter);
    } catch (const Error& e) {
      throw e.with_context(
          "generalized_symmetric_eigen: mass matrix is not SPD and jitter "
          "regularization failed");
    }
    if (info != nullptr) {
      info->mass_spd = false;
      info->mass_jitter = jittered.jitter;
      info->failure = mass_failure;
    }
    factor = std::move(jittered.factor);
  }

  // C = L^{-1} A L^{-T}: first Y = L^{-1} A (rows), then C = Y L^{-T},
  // computed as C^T = L^{-1} Y^T — but Y L^{-T} = (L^{-1} Y^T)^T and C is
  // symmetric, so one transpose suffices.
  Matrix c = a;
  solve_lower_triangular_inplace(factor.lower, c);  // c = L^{-1} A
  c = c.transposed();                                // c = A^T L^{-T} = A L^{-T} ... transposed
  solve_lower_triangular_inplace(factor.lower, c);   // c = L^{-1} A L^{-T}
  // Symmetrize against round-off.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) {
      const double v = 0.5 * (c(i, j) + c(j, i));
      c(i, j) = v;
      c(j, i) = v;
    }

  SymmetricEigenResult reduced = symmetric_eigen(c);
  // Back-transform all eigenvectors at once: D = L^{-T} U.
  solve_lower_transposed_inplace(factor.lower, reduced.vectors);
  return reduced;
}

}  // namespace sckl::linalg
