// Lanczos iteration with full reorthogonalization for the top-r eigenpairs
// of a symmetric operator.
//
// The paper computes only the first 200 eigenpairs of the n = 1546 Galerkin
// matrix (MATLAB eigs, 11.2 s); this is our equivalent fast path. The
// operator is supplied as a matvec closure so both dense matrices and
// matrix-free kernels (K(c_i, c_k) sqrt(a_i a_k) evaluated on the fly) can
// be used without materializing n^2 storage.
//
// Failure semantics: when the subspace limit is reached before the requested
// pairs converge, the final Ritz extraction is accepted as best effort only
// if every requested pair's residual is within `best_effort_tolerance`;
// otherwise lanczos_largest throws sckl::Error with code kNoConvergence
// (solve_kle catches exactly that code and retries with the dense backend).
// The optional LanczosInfo out-parameter records what happened either way.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "linalg/kernel_operator.h"
#include "linalg/symmetric_eigen.h"

namespace sckl::linalg {

/// y = A * x for a symmetric operator of dimension n.
using MatVec = std::function<void(const Vector& x, Vector& y)>;

/// Options controlling the Lanczos iteration.
struct LanczosOptions {
  /// Number of eigenpairs wanted (largest algebraic).
  std::size_t num_eigenpairs = 25;
  /// Maximum Krylov subspace dimension; 0 means min(n, 2k + 80).
  std::size_t max_subspace = 0;
  /// Relative residual tolerance per Ritz pair.
  double tolerance = 1e-10;
  /// Looser relative residual bound applied at the subspace limit: a
  /// non-converged extraction is accepted as best effort only when every
  /// requested pair is below this, and rejected (kNoConvergence) otherwise.
  double best_effort_tolerance = 1e-6;
  /// Seed for the random start vector.
  std::uint64_t seed = 42;
};

/// Telemetry of one lanczos_largest call. Filled through the out-parameter
/// before any failure is thrown, so callers that catch the error still see
/// the iteration counts and residuals of the failed attempt.
struct LanczosInfo {
  bool converged = false;          // tolerance met within the subspace limit
  bool best_effort = false;        // limit hit; pairs passed the loose bound
  bool fault_injected = false;     // robust::FaultSite::kLanczosConvergence
  std::size_t iterations = 0;      // final Krylov subspace dimension m
  double max_residual = 0.0;       // worst relative residual among the k pairs
  std::size_t rejected_pairs = 0;  // pairs over best_effort_tolerance
};

/// Computes the largest eigenpairs of the symmetric operator `op`.
/// Eigenvalues descend; column j of `vectors` holds the Ritz vector for
/// values[j]. Throws sckl::Error (code kNoConvergence) when the subspace
/// limit is reached and the best-effort residual check fails. This is the
/// one Lanczos implementation — the overloads below only adapt their input
/// into a KernelOperator, so dense matrices, on-the-fly kernel matvecs, and
/// hierarchical compressions all run the identical iteration.
SymmetricEigenResult lanczos_largest(const KernelOperator& op,
                                     const LanczosOptions& options = {},
                                     LanczosInfo* info = nullptr);

/// Convenience overload for a matvec closure of dimension n.
SymmetricEigenResult lanczos_largest(const MatVec& apply, std::size_t n,
                                     const LanczosOptions& options = {},
                                     LanczosInfo* info = nullptr);

/// Convenience overload for a dense symmetric matrix (runs through
/// DenseKernelOperator, i.e. the dispatched SIMD gemv kernels).
SymmetricEigenResult lanczos_largest(const Matrix& a,
                                     const LanczosOptions& options = {},
                                     LanczosInfo* info = nullptr);

}  // namespace sckl::linalg
