// Lanczos iteration with full reorthogonalization for the top-r eigenpairs
// of a symmetric operator.
//
// The paper computes only the first 200 eigenpairs of the n = 1546 Galerkin
// matrix (MATLAB eigs, 11.2 s); this is our equivalent fast path. The
// operator is supplied as a matvec closure so both dense matrices and
// matrix-free kernels (K(c_i, c_k) sqrt(a_i a_k) evaluated on the fly) can
// be used without materializing n^2 storage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "linalg/symmetric_eigen.h"

namespace sckl::linalg {

/// y = A * x for a symmetric operator of dimension n.
using MatVec = std::function<void(const Vector& x, Vector& y)>;

/// Options controlling the Lanczos iteration.
struct LanczosOptions {
  /// Number of eigenpairs wanted (largest algebraic).
  std::size_t num_eigenpairs = 25;
  /// Maximum Krylov subspace dimension; 0 means min(n, 2k + 80).
  std::size_t max_subspace = 0;
  /// Relative residual tolerance per Ritz pair.
  double tolerance = 1e-10;
  /// Seed for the random start vector.
  std::uint64_t seed = 42;
};

/// Computes the largest eigenpairs of the symmetric operator `apply` of
/// dimension n. Eigenvalues descend; column j of `vectors` holds the Ritz
/// vector for values[j]. Throws when the subspace limit is reached before
/// the requested pairs converge.
SymmetricEigenResult lanczos_largest(const MatVec& apply, std::size_t n,
                                     const LanczosOptions& options = {});

/// Convenience overload for a dense symmetric matrix.
SymmetricEigenResult lanczos_largest(const Matrix& a,
                                     const LanczosOptions& options = {});

}  // namespace sckl::linalg
