#include "linalg/cholesky.h"

#include <cmath>
#include <cstdio>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "robust/fault_injection.h"

namespace sckl::linalg {
namespace {

// In-place lower Cholesky; returns false on a non-positive pivot, reporting
// the failing index and eliminated diagonal value through `failure`.
bool factor_in_place(Matrix& a, CholeskyFailure* failure) {
  const std::size_t n = a.rows();
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    const double* jrow = a.row_ptr(j);
    for (std::size_t k = 0; k < j; ++k) diag -= jrow[k] * jrow[k];
    if (!(diag > 0.0)) {  // also rejects NaN
      if (failure != nullptr) *failure = {j, diag};
      return false;
    }
    const double ljj = std::sqrt(diag);
    a(j, j) = ljj;
    const double inv = 1.0 / ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      const double* irow = a.row_ptr(i);
      for (std::size_t k = 0; k < j; ++k) sum -= irow[k] * jrow[k];
      a(i, j) = sum * inv;
    }
  }
  // Zero the strict upper triangle so `lower` is exactly L.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) a(i, j) = 0.0;
  return true;
}

std::string pivot_message(const CholeskyFailure& failure) {
  char buffer[96];
  std::snprintf(buffer, sizeof(buffer), "(pivot %zu = %.6g after elimination)",
                failure.pivot_index, failure.pivot_value);
  return buffer;
}

}  // namespace

Vector CholeskyFactor::solve(const Vector& b) const {
  const std::size_t n = lower.rows();
  require(b.size() == n, "CholeskyFactor::solve: size mismatch");
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    const double* row = lower.row_ptr(i);
    for (std::size_t k = 0; k < i; ++k) sum -= row[k] * y[k];
    y[i] = sum / row[i];
  }
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) sum -= lower(k, ii) * x[k];
    x[ii] = sum / lower(ii, ii);
  }
  return x;
}

double CholeskyFactor::log_determinant() const {
  double sum = 0.0;
  for (std::size_t i = 0; i < lower.rows(); ++i)
    sum += std::log(lower(i, i));
  return 2.0 * sum;
}

CholeskyFactor cholesky(const Matrix& k) {
  CholeskyFailure failure;
  auto result = try_cholesky(k, &failure);
  if (!result.has_value())
    throw Error("cholesky: matrix is not positive definite " +
                    pivot_message(failure),
                ErrorCode::kNotPositiveDefinite);
  return std::move(*result);
}

std::optional<CholeskyFactor> try_cholesky(const Matrix& k,
                                           CholeskyFailure* failure) {
  require(k.rows() == k.cols(), "cholesky: matrix must be square");
  if (robust::fault_injected(robust::FaultSite::kCholeskyPivot)) {
    if (failure != nullptr) *failure = {0, std::nan("")};
    return std::nullopt;
  }
  obs::Span span("linalg.cholesky");
  obs::counter("sckl.linalg.cholesky.factorizations").add(1);
  Matrix a = k;
  if (!factor_in_place(a, failure)) return std::nullopt;
  return CholeskyFactor{std::move(a)};
}

JitteredCholesky cholesky_with_jitter(Matrix k, double initial_jitter,
                                      int max_attempts) {
  require(k.rows() == k.cols(), "cholesky_with_jitter: matrix must be square");
  const std::size_t n = k.rows();
  obs::Span span("linalg.cholesky");
  double jitter = 0.0;
  double next = initial_jitter;
  CholeskyFailure failure;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) obs::counter("sckl.linalg.cholesky.jitter_retries").add(1);
    if (robust::fault_injected(robust::FaultSite::kCholeskyPivot)) {
      failure = {0, std::nan("")};
    } else {
      obs::counter("sckl.linalg.cholesky.factorizations").add(1);
      Matrix a = k;
      for (std::size_t i = 0; i < n; ++i) a(i, i) += jitter;
      if (factor_in_place(a, &failure))
        return JitteredCholesky{CholeskyFactor{std::move(a)}, jitter};
    }
    jitter = next;
    next *= 10.0;
  }
  throw Error("cholesky_with_jitter: failed even with maximal jitter " +
                  pivot_message(failure),
              ErrorCode::kNotPositiveDefinite);
}

}  // namespace sckl::linalg
