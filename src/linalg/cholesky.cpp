#include "linalg/cholesky.h"

#include <cmath>

#include "common/error.h"

namespace sckl::linalg {
namespace {

// In-place lower Cholesky; returns false on a non-positive pivot.
bool factor_in_place(Matrix& a) {
  const std::size_t n = a.rows();
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    const double* jrow = a.row_ptr(j);
    for (std::size_t k = 0; k < j; ++k) diag -= jrow[k] * jrow[k];
    if (!(diag > 0.0)) return false;  // also rejects NaN
    const double ljj = std::sqrt(diag);
    a(j, j) = ljj;
    const double inv = 1.0 / ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      const double* irow = a.row_ptr(i);
      for (std::size_t k = 0; k < j; ++k) sum -= irow[k] * jrow[k];
      a(i, j) = sum * inv;
    }
  }
  // Zero the strict upper triangle so `lower` is exactly L.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) a(i, j) = 0.0;
  return true;
}

}  // namespace

Vector CholeskyFactor::solve(const Vector& b) const {
  const std::size_t n = lower.rows();
  require(b.size() == n, "CholeskyFactor::solve: size mismatch");
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    const double* row = lower.row_ptr(i);
    for (std::size_t k = 0; k < i; ++k) sum -= row[k] * y[k];
    y[i] = sum / row[i];
  }
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) sum -= lower(k, ii) * x[k];
    x[ii] = sum / lower(ii, ii);
  }
  return x;
}

double CholeskyFactor::log_determinant() const {
  double sum = 0.0;
  for (std::size_t i = 0; i < lower.rows(); ++i)
    sum += std::log(lower(i, i));
  return 2.0 * sum;
}

CholeskyFactor cholesky(const Matrix& k) {
  auto result = try_cholesky(k);
  require(result.has_value(), "cholesky: matrix is not positive definite");
  return std::move(*result);
}

std::optional<CholeskyFactor> try_cholesky(const Matrix& k) {
  require(k.rows() == k.cols(), "cholesky: matrix must be square");
  Matrix a = k;
  if (!factor_in_place(a)) return std::nullopt;
  return CholeskyFactor{std::move(a)};
}

JitteredCholesky cholesky_with_jitter(Matrix k, double initial_jitter,
                                      int max_attempts) {
  require(k.rows() == k.cols(), "cholesky_with_jitter: matrix must be square");
  const std::size_t n = k.rows();
  double jitter = 0.0;
  double next = initial_jitter;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    Matrix a = k;
    for (std::size_t i = 0; i < n; ++i) a(i, i) += jitter;
    if (factor_in_place(a))
      return JitteredCholesky{CholeskyFactor{std::move(a)}, jitter};
    jitter = next;
    next *= 10.0;
  }
  require(false, "cholesky_with_jitter: failed even with maximal jitter");
  return {};  // unreachable
}

}  // namespace sckl::linalg
