// Cyclic Jacobi eigensolver for symmetric matrices.
//
// Slower than the tridiagonal QL path (O(n^3) per sweep) but famously
// accurate and independent in failure modes, so it serves as the
// cross-validation oracle for symmetric_eigen() and the Lanczos solver in
// the test suite. Intended for small n.
#pragma once

#include "linalg/symmetric_eigen.h"

namespace sckl::linalg {

/// Full eigen-decomposition by cyclic Jacobi rotations; result sorted
/// descending. Throws if the off-diagonal norm fails to fall below tolerance
/// within `max_sweeps`.
SymmetricEigenResult jacobi_eigen(const Matrix& a, int max_sweeps = 60,
                                  double tolerance = 1e-14);

}  // namespace sckl::linalg
