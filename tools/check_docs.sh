#!/usr/bin/env bash
# Documentation gate, run by ctest (docs_check) and the CI docs job:
#   1. every relative markdown link in the top-level docs resolves to a file
#      or directory in the repository;
#   2. every src/*/ module directory appears in DESIGN.md's module inventory
#      (section 2) — adding a library without documenting it fails CI.
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root" || exit 1

status=0
docs="README.md DESIGN.md EXPERIMENTS.md CHANGES.md ROADMAP.md"

# --- 1. relative link checker -------------------------------------------
# Matches [text](target) capturing the target; external (scheme://) and
# intra-document (#anchor) links are skipped. Targets may carry an anchor
# suffix, which is stripped before the existence check.
for doc in $docs; do
  [ -f "$doc" ] || continue
  # shellcheck disable=SC2013
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"
    [ -n "$path" ] || continue
    if [ ! -e "$path" ]; then
      echo "check_docs: $doc links to missing path '$path'" >&2
      status=1
    fi
  done < <(grep -o '\[[^]]*\]([^)]*)' "$doc" | sed 's/.*(\(.*\))/\1/')
done

# --- 2. DESIGN.md module inventory gate ---------------------------------
for dir in src/*/; do
  module="$(basename "$dir")"
  if ! grep -q "src/$module" DESIGN.md; then
    echo "check_docs: src/$module is not documented in DESIGN.md's module inventory" >&2
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "check_docs: all links resolve and every src/ module is documented"
fi
exit "$status"
