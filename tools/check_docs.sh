#!/usr/bin/env bash
# Documentation gate, run by ctest (docs_check) and the CI docs job:
#   1. every relative markdown link in the top-level docs resolves to a file
#      or directory in the repository;
#   2. every src/*/ module directory appears in DESIGN.md's module inventory
#      (section 2) — adding a library without documenting it fails CI;
#   3. the matrix-free layer stays documented: DESIGN.md must keep the §14
#      section header and name each of its load-bearing pieces, and the
#      README must document the --matrix-free flag.
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root" || exit 1

status=0
docs="README.md DESIGN.md EXPERIMENTS.md CHANGES.md ROADMAP.md"

# --- 1. relative link checker -------------------------------------------
# Matches [text](target) capturing the target; external (scheme://) and
# intra-document (#anchor) links are skipped. Targets may carry an anchor
# suffix, which is stripped before the existence check.
for doc in $docs; do
  [ -f "$doc" ] || continue
  # shellcheck disable=SC2013
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"
    [ -n "$path" ] || continue
    if [ ! -e "$path" ]; then
      echo "check_docs: $doc links to missing path '$path'" >&2
      status=1
    fi
  done < <(grep -o '\[[^]]*\]([^)]*)' "$doc" | sed 's/.*(\(.*\))/\1/')
done

# --- 2. DESIGN.md module inventory gate ---------------------------------
for dir in src/*/; do
  module="$(basename "$dir")"
  if ! grep -q "src/$module" DESIGN.md; then
    echo "check_docs: src/$module is not documented in DESIGN.md's module inventory" >&2
    status=1
  fi
done

# --- 3. matrix-free documentation gate ----------------------------------
# The source tree references DESIGN.md §14 by number and name; keep the
# section and its inventory tokens from silently disappearing or drifting.
require_in() {
  # require_in FILE PATTERN DESCRIPTION
  if ! grep -q -e "$2" "$1"; then
    echo "check_docs: $1 is missing $3 ('$2')" >&2
    status=1
  fi
}
require_in DESIGN.md "^## 14\. Matrix-free KLE" "the §14 matrix-free section header"
for token in "src/linalg/hmat" "src/core/matfree_operator" \
             "KernelOperator" "ExactKernelOperator" "aca_tolerance" \
             "admissibility" "dense_fallback_max_n" "bench_matfree"; do
  require_in DESIGN.md "$token" "a §14 matrix-free inventory token"
done
require_in README.md "\-\-matrix-free" "the matrix-free flag documentation"
require_in README.md "\-\-aca-tol" "the ACA tolerance flag documentation"

if [ "$status" -eq 0 ]; then
  echo "check_docs: all links resolve and every src/ module is documented"
fi
exit "$status"
